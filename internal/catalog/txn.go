package catalog

import (
	"fmt"
	"sync"

	"repro/internal/storage"
	"repro/internal/types"
)

// Txn is one write transaction against the catalog: a storage-level MVCC
// transaction plus per-table deltas of inserted and deleted tuples, so
// commit can maintain statistics incrementally without rescanning.
//
// Visibility follows snapshot isolation: the transaction's own writes
// are visible to it immediately; other transactions see them only after
// Commit. Conflicts are first-writer-wins — deleting a version another
// transaction already deleted (committed or in flight) fails with
// storage.ErrWriteConflict, and the caller must Abort.
type Txn struct {
	cat   *Catalog
	inner *storage.Txn

	mu     sync.Mutex
	deltas map[*Table]*tableDelta
	done   bool
}

// tableDelta accumulates one transaction's net effect on one table.
type tableDelta struct {
	inserted []types.Tuple
	deleted  []types.Tuple
	bytes    int64 // encoded bytes of inserted minus deleted tuples
}

// BeginTxn starts a write transaction with a fresh snapshot.
func (c *Catalog) BeginTxn() *Txn {
	return &Txn{cat: c, inner: c.txns.Begin(), deltas: make(map[*Table]*tableDelta)}
}

// BeginRead starts a read-only transaction: a registered snapshot that
// pins the GC horizon for the duration of a query. End it with
// (*storage.Txn).End.
func (c *Catalog) BeginRead() *storage.Txn {
	return c.txns.BeginRead()
}

// ID returns the underlying transaction ID.
func (tx *Txn) ID() storage.TxnID { return tx.inner.ID() }

// Snapshot returns the transaction's visibility snapshot.
func (tx *Txn) Snapshot() *storage.TxnSnapshot { return tx.inner.Snapshot() }

func (tx *Txn) delta(t *Table) *tableDelta {
	d := tx.deltas[t]
	if d == nil {
		d = &tableDelta{}
		tx.deltas[t] = d
	}
	return d
}

// Insert adds a tuple version to the table, visible to this transaction
// and, after Commit, to later snapshots. Indexes are maintained eagerly;
// an aborted insert leaves index entries pointing at a deleted slot,
// which visibility-checked fetches skip.
func (tx *Txn) Insert(t *Table, tup types.Tuple) error {
	if t.Temp || !t.Heap.Stamped() {
		return fmt.Errorf("catalog: table %q does not accept transactional writes", t.Name)
	}
	if len(tup) != t.Schema.Len() {
		return fmt.Errorf("catalog: tuple arity %d does not match %s%s", len(tup), t.Name, t.Schema)
	}
	rid, err := tx.inner.InsertTuple(t.Heap, tup)
	if err != nil {
		return err
	}
	for col, idx := range t.Indexes {
		idx.Tree.Insert(tup[col], rid)
	}
	tx.mu.Lock()
	d := tx.delta(t)
	d.inserted = append(d.inserted, tup)
	d.bytes += int64(types.EncodedSize(tup))
	tx.mu.Unlock()
	return nil
}

// Delete marks the version at rid deleted by this transaction. tup must
// be the tuple stored there (the executor has just fetched it); it feeds
// the stats delta without a re-read. Returns storage.ErrWriteConflict if
// another transaction already deleted the version.
func (tx *Txn) Delete(t *Table, rid storage.RID, tup types.Tuple) error {
	if err := tx.inner.DeleteTuple(t.Heap, rid); err != nil {
		return err
	}
	tx.mu.Lock()
	d := tx.delta(t)
	d.deleted = append(d.deleted, tup)
	d.bytes -= int64(types.EncodedSize(tup))
	tx.mu.Unlock()
	return nil
}

// Rows returns the number of row versions this transaction has written
// (inserts plus deletes; an update counts as both).
func (tx *Txn) Rows() int64 {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	var n int64
	for _, d := range tx.deltas {
		n += int64(len(d.inserted) + len(d.deleted))
	}
	return n
}

// Commit publishes the transaction's writes. Statistics are maintained
// first — cardinality and average tuple size shifted by the delta,
// min/max extended, histograms adjusted bucket-wise, FM sketches fed the
// inserted values — then each touched table's version and the catalog's
// global StatsVersion are bumped (exactly once per committing write
// transaction), and finally the transaction deactivates, making its
// versions visible. Readers therefore never see new data with pre-write
// statistics claiming it does not exist.
func (tx *Txn) Commit() {
	tx.mu.Lock()
	deltas := tx.deltas
	tx.deltas = nil
	wrote := false
	if !tx.done {
		for _, d := range deltas {
			if len(d.inserted) > 0 || len(d.deleted) > 0 {
				wrote = true
			}
		}
	}
	tx.done = true
	tx.mu.Unlock()
	for t, d := range deltas {
		if len(d.inserted) == 0 && len(d.deleted) == 0 {
			continue
		}
		t.applyDelta(d)
		t.version.Add(1)
	}
	if wrote {
		tx.cat.version.Add(1)
	}
	tx.inner.Commit()
}

// Abort physically undoes the transaction's writes and deactivates it.
// Statistics are untouched — they were never updated for in-flight
// writes.
func (tx *Txn) Abort() error {
	tx.mu.Lock()
	tx.deltas = nil
	tx.done = true
	tx.mu.Unlock()
	return tx.inner.Abort()
}

// applyDelta folds a committed transaction's per-table delta into the
// table's statistics under the stats lock. Column stats are maintained
// copy-on-write: readers holding the old *ColumnStats keep a consistent
// (if instantly stale) view.
func (t *Table) applyDelta(d *tableDelta) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()

	oldCard := t.Cardinality
	net := float64(len(d.inserted) - len(d.deleted))
	newCard := oldCard + net
	if newCard < 0 {
		newCard = 0
	}
	totalBytes := t.AvgTupleBytes*oldCard + float64(d.bytes)
	t.Cardinality = newCard
	if newCard > 0 && totalBytes > 0 {
		t.AvgTupleBytes = totalBytes / newCard
	}
	t.UpdatesSinceAnalyze += int64(len(d.inserted) + len(d.deleted))

	if len(t.ColStats) == 0 {
		return
	}
	newStats := make(map[int]*ColumnStats, len(t.ColStats))
	for col, cs := range t.ColStats {
		newStats[col] = cs.withDelta(col, d, newCard)
	}
	t.ColStats = newStats
}

// withDelta returns a copy of the column stats adjusted for a committed
// delta. The receiver is never mutated.
func (cs *ColumnStats) withDelta(col int, d *tableDelta, newCard float64) *ColumnStats {
	if cs == nil {
		return nil
	}
	n := &ColumnStats{
		Distinct: cs.Distinct,
		Min:      cs.Min,
		Max:      cs.Max,
		NullFrac: cs.NullFrac,
		nulls:    cs.nulls,
		Sketch:   cs.Sketch,
		Hist:     cs.Hist,
	}
	if n.Hist != nil {
		n.Hist = n.Hist.Clone()
	}
	if n.Sketch != nil && hasNonNull(d.inserted, col) {
		n.Sketch = n.Sketch.Clone()
	}
	for _, tup := range d.inserted {
		v := tup[col]
		if v.IsNull() {
			n.nulls++
			continue
		}
		if n.Min.IsNull() || v.Compare(n.Min) < 0 {
			n.Min = v
		}
		if n.Max.IsNull() || v.Compare(n.Max) > 0 {
			n.Max = v
		}
		if n.Hist != nil {
			n.Hist.AddValue(v)
		}
		if n.Sketch != nil {
			n.Sketch.Add(v)
		}
	}
	for _, tup := range d.deleted {
		v := tup[col]
		if v.IsNull() {
			if n.nulls > 0 {
				n.nulls--
			}
			continue
		}
		// Min/Max and the sketch cannot shrink without a rescan; the
		// histogram sheds the count.
		if n.Hist != nil {
			n.Hist.RemoveValue(v)
		}
	}
	if n.Sketch != nil {
		if est := n.Sketch.Estimate(); est > n.Distinct {
			n.Distinct = est
		}
	}
	if newCard > 0 {
		n.NullFrac = n.nulls / newCard
		if n.NullFrac > 1 {
			n.NullFrac = 1
		}
	} else {
		n.NullFrac = 0
	}
	return n
}

func hasNonNull(tups []types.Tuple, col int) bool {
	for _, t := range tups {
		if !t[col].IsNull() {
			return true
		}
	}
	return false
}
