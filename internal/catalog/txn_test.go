package catalog

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/histogram"
	"repro/internal/types"
)

func loadedTable(t *testing.T, c *Catalog, name string, rows int) *Table {
	t.Helper()
	tbl, err := c.CreateTable(name, rsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		tup := types.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 10)),
			types.NewString(fmt.Sprintf("name-%d", i%50)),
		}
		if err := tbl.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Analyze(name, AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTxnCommitVisibilityAndRowCount(t *testing.T) {
	c := newTestCatalog()
	tbl := loadedTable(t, c, "r", 100)

	tx := c.BeginTxn()
	for i := 100; i < 120; i++ {
		tup := types.Tuple{types.NewInt(int64(i)), types.NewInt(int64(i % 10)), types.NewString("new")}
		if err := tx.Insert(tbl, tup); err != nil {
			t.Fatal(err)
		}
	}
	if tx.Rows() != 20 {
		t.Errorf("Rows = %d, want 20", tx.Rows())
	}
	// Uncommitted: catalog stats unchanged.
	if card, _ := tbl.Stats(); card != 100 {
		t.Errorf("pre-commit cardinality = %.0f, want 100", card)
	}
	tx.Commit()
	if card, _ := tbl.Stats(); card != 120 {
		t.Errorf("post-commit cardinality = %.0f, want 120", card)
	}
	if tbl.UpdatesSinceAnalyze != 20 {
		t.Errorf("UpdatesSinceAnalyze = %d, want 20", tbl.UpdatesSinceAnalyze)
	}
}

// TestStatsVersionBumpsOncePerCommit is the satellite contract: the
// global statistics version moves exactly once per committing write
// transaction that wrote at least one row — not per statement, not per
// table — and not at all for empty or aborted transactions.
func TestStatsVersionBumpsOncePerCommit(t *testing.T) {
	c := newTestCatalog()
	r := loadedTable(t, c, "r", 50)
	s := loadedTable(t, c, "s", 50)

	v0 := c.StatsVersion()

	// Multi-table transaction: one global bump, one per-table bump each.
	rv0, sv0 := r.Version(), s.Version()
	tx := c.BeginTxn()
	for i := 0; i < 5; i++ {
		if err := tx.Insert(r, types.Tuple{types.NewInt(int64(100 + i)), types.NewInt(0), types.NewString("x")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert(s, types.Tuple{types.NewInt(int64(100 + i)), types.NewInt(0), types.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if got := c.StatsVersion(); got != v0+1 {
		t.Errorf("StatsVersion = %d after multi-table commit, want %d", got, v0+1)
	}
	if r.Version() != rv0+1 || s.Version() != sv0+1 {
		t.Errorf("table versions = %d,%d want %d,%d", r.Version(), s.Version(), rv0+1, sv0+1)
	}

	// Empty transaction: no bump.
	c.BeginTxn().Commit()
	if got := c.StatsVersion(); got != v0+1 {
		t.Errorf("StatsVersion = %d after empty commit, want %d", got, v0+1)
	}

	// Aborted transaction: no bump.
	tx = c.BeginTxn()
	if err := tx.Insert(r, types.Tuple{types.NewInt(999), types.NewInt(0), types.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := c.StatsVersion(); got != v0+1 {
		t.Errorf("StatsVersion = %d after abort, want %d", got, v0+1)
	}
}

// TestIncrementalStatsTrackAnalyze writes a batch through transactions
// and checks the incrementally-maintained statistics stay within
// tolerance of a from-scratch ANALYZE over the same data.
func TestIncrementalStatsTrackAnalyze(t *testing.T) {
	c := newTestCatalog()
	tbl := loadedTable(t, c, "r", 500)

	// A write mix: 300 inserts extending the id domain, 100 deletes.
	tx := c.BeginTxn()
	for i := 500; i < 800; i++ {
		tup := types.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 10)),
			types.NewString(fmt.Sprintf("name-%d", i%50)),
		}
		if err := tx.Insert(tbl, tup); err != nil {
			t.Fatal(err)
		}
	}
	snap := tx.Snapshot()
	scan := tbl.Heap.Scan().WithSnapshot(snap)
	deleted := 0
	for scan.Next() && deleted < 100 {
		tup := scan.Tuple()
		if tup[0].Int() < 100 {
			if err := tx.Delete(tbl, scan.RID(), tup.Clone()); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
	}
	if scan.Err() != nil {
		t.Fatal(scan.Err())
	}
	tx.Commit()

	// Capture the incrementally-maintained stats.
	incCard, incAvg := tbl.Stats()
	incID := tbl.ColStat(0)
	incGrp := tbl.ColStat(1)

	// Re-analyze from scratch over the same (post-write) data.
	if err := c.Analyze("r", AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
		t.Fatal(err)
	}
	freshCard, freshAvg := tbl.Stats()
	freshID := tbl.ColStat(0)
	freshGrp := tbl.ColStat(1)

	if incCard != freshCard {
		t.Errorf("cardinality: incremental %.0f vs fresh %.0f", incCard, freshCard)
	}
	if math.Abs(incAvg-freshAvg)/freshAvg > 0.05 {
		t.Errorf("avg tuple bytes: incremental %.1f vs fresh %.1f", incAvg, freshAvg)
	}
	// Min/Max extended by the out-of-range inserts.
	if incID.Max.Int() != freshID.Max.Int() {
		t.Errorf("id max: incremental %d vs fresh %d", incID.Max.Int(), freshID.Max.Int())
	}
	// FM-sketch-maintained distinct within 15% of the exact rebuild.
	if math.Abs(incID.Distinct-freshID.Distinct)/freshID.Distinct > 0.15 {
		t.Errorf("id distinct: incremental %.0f vs fresh %.0f", incID.Distinct, freshID.Distinct)
	}
	if math.Abs(incGrp.Distinct-freshGrp.Distinct)/math.Max(1, freshGrp.Distinct) > 0.5 {
		t.Errorf("grp distinct: incremental %.0f vs fresh %.0f", incGrp.Distinct, freshGrp.Distinct)
	}
	// Histogram totals track the live row count.
	if math.Abs(incID.Hist.Total-freshID.Hist.Total)/freshID.Hist.Total > 0.05 {
		t.Errorf("id hist total: incremental %.0f vs fresh %.0f", incID.Hist.Total, freshID.Hist.Total)
	}
	// A committing transaction must not have mutated the previously
	// published stats structs in place (copy-on-write contract).
	if incID == freshID {
		t.Error("ColStat pointer unchanged by ANALYZE; expected republication")
	}
}

func TestTxnDeleteConflictSurfacesAndAborts(t *testing.T) {
	c := newTestCatalog()
	tbl := loadedTable(t, c, "r", 10)

	// Find one RID.
	scan := tbl.Heap.Scan().WithSnapshot(c.Txns().LatestSnapshot())
	if !scan.Next() {
		t.Fatal("empty table")
	}
	rid, tup := scan.RID(), scan.Tuple().Clone()

	tx1 := c.BeginTxn()
	tx2 := c.BeginTxn()
	if err := tx1.Delete(tbl, rid, tup); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete(tbl, rid, tup); err == nil {
		t.Fatal("second deleter did not conflict")
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	tx1.Commit()
	if card, _ := tbl.Stats(); card != 9 {
		t.Errorf("cardinality = %.0f, want 9", card)
	}
}

func TestVacuumReclaimsDeadVersions(t *testing.T) {
	c := newTestCatalog()
	tbl := loadedTable(t, c, "r", 20)

	tx := c.BeginTxn()
	scan := tbl.Heap.Scan().WithSnapshot(tx.Snapshot())
	removed := 0
	for scan.Next() && removed < 5 {
		if err := tx.Delete(tbl, scan.RID(), scan.Tuple().Clone()); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	if scan.Err() != nil {
		t.Fatal(scan.Err())
	}
	tx.Commit()

	if dead, err := c.DeadVersions(); err != nil || dead != 5 {
		t.Fatalf("DeadVersions = %d (err %v), want 5", dead, err)
	}
	n, err := c.Vacuum()
	if err != nil || n != 5 {
		t.Fatalf("Vacuum removed %d (err %v), want 5", n, err)
	}
	if dead, _ := c.DeadVersions(); dead != 0 {
		t.Errorf("DeadVersions = %d after vacuum, want 0", dead)
	}
}
