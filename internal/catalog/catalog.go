// Package catalog maintains table metadata and the system statistics the
// optimizer estimates from: per-table cardinality and page counts, and
// per-column histograms, distinct counts, and min/max values.
//
// The catalog also tracks update activity since the last ANALYZE, which
// feeds the paper's inaccuracy-potential rule that stale statistics are
// one level less trustworthy (§2.5).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/histogram"
	"repro/internal/sketch"
	"repro/internal/storage"
	"repro/internal/types"
)

// ColumnStats summarizes one column's value distribution. Once published
// in a table's ColStats map the struct is immutable: incremental
// maintenance clones it, mutates the clone, and swaps the pointer under
// the table's stats lock, so readers holding an old pointer stay safe.
type ColumnStats struct {
	Hist     *histogram.Histogram // nil if no histogram was built
	Distinct float64              // 0 if unknown
	Min, Max types.Value          // NULL if unknown
	NullFrac float64

	// Sketch is the FM distinct-count sketch seeded by ANALYZE and fed
	// by committed inserts, so Distinct tracks write activity between
	// full scans (paper [6]).
	Sketch *sketch.HybridDistinct

	// nulls is the absolute null count backing NullFrac, needed to
	// maintain the fraction incrementally.
	nulls float64
}

// HasHistogram reports whether a histogram is available.
func (cs *ColumnStats) HasHistogram() bool {
	return cs != nil && cs.Hist != nil && len(cs.Hist.Buckets) > 0
}

// Index is a B+tree over one column plus its clustering factor: the
// fraction of consecutive heap tuples whose key is non-decreasing. A
// clustering factor near 1 means index-ordered access walks the heap
// nearly sequentially, so repeated fetches hit the same pages — the
// classic System-R clustered-index distinction the cost model needs.
type Index struct {
	Tree       *storage.BTree
	Clustering float64
}

// Table is one base relation: schema, heap storage, indexes, and
// statistics.
//
// Statistics fields (Cardinality, AvgTupleBytes, ColStats,
// UpdatesSinceAnalyze) are protected by statsMu because committed DML
// updates them while concurrent queries plan against them. Query-path
// readers must use the Stats, ColStat, and StaleStats accessors; direct
// field access remains safe only in single-threaded contexts (bulk
// loading, temp tables private to one query, tests).
type Table struct {
	Name   string
	Schema *types.Schema
	Heap   *storage.HeapFile

	// Indexes maps column ordinal to the index over that column. The
	// map is populated under the catalog's schema-level exclusion
	// (CREATE INDEX); the trees themselves are internally locked.
	Indexes map[int]*Index

	statsMu sync.RWMutex

	// Stats as of the last Analyze plus incremental maintenance by
	// committed writes. Guarded by statsMu.
	Cardinality   float64
	AvgTupleBytes float64
	ColStats      map[int]*ColumnStats

	// UpdatesSinceAnalyze counts tuples inserted or deleted since
	// statistics were last collected. Guarded by statsMu.
	UpdatesSinceAnalyze int64

	// version counts statistics changes to this table alone: ANALYZE,
	// CREATE INDEX, and every committed write transaction touching it.
	// The plan cache keys entry validity on the versions of exactly the
	// tables a plan references.
	version atomic.Int64

	// Temp marks a table registered via RegisterTemp: a materialized
	// intermediate private to one query. Temp tables do not bump the
	// catalog's statistics version — they come and go on every plan
	// switch and are invisible to other queries' plans.
	Temp bool

	// Virtual, when non-nil, makes the table a system view: a scan
	// calls the provider for a point-in-time row set instead of reading
	// the heap (which stays an empty placeholder for the planner). The
	// provider must be safe for concurrent calls and must not acquire
	// engine-wide locks a running query could hold.
	Virtual func() []types.Tuple
}

// NumPages returns the table's size in pages.
func (t *Table) NumPages() float64 { return float64(t.Heap.NumPages()) }

// Version returns the table's statistics version, which increases on
// ANALYZE, CREATE INDEX, and every committed write transaction that
// touched the table.
func (t *Table) Version() int64 { return t.version.Load() }

// Stats returns the table's cardinality and average tuple size under the
// stats lock. This is the accessor the optimizer and re-optimizer use on
// the query path, where committed writes may update stats concurrently.
func (t *Table) Stats() (card, avgBytes float64) {
	t.statsMu.RLock()
	defer t.statsMu.RUnlock()
	return t.Cardinality, t.AvgTupleBytes
}

// ColStat returns the column's statistics under the stats lock, or nil
// if none were collected. The returned struct is immutable — maintenance
// replaces the pointer rather than mutating in place.
func (t *Table) ColStat(col int) *ColumnStats {
	t.statsMu.RLock()
	defer t.statsMu.RUnlock()
	return t.ColStats[col]
}

// StaleStats reports whether update activity since the last ANALYZE is
// significant — more than 10% of the analyzed cardinality — which bumps
// every inaccuracy potential one level (§2.5).
func (t *Table) StaleStats() bool {
	t.statsMu.RLock()
	defer t.statsMu.RUnlock()
	if t.Cardinality <= 0 {
		return t.UpdatesSinceAnalyze > 0
	}
	return float64(t.UpdatesSinceAnalyze) > 0.1*t.Cardinality
}

// Insert appends a tuple to the table outside any transaction (frozen,
// visible to every snapshot), maintains indexes, and counts update
// activity. This is the bulk-load path; transactional writes go through
// (*Txn).Insert.
func (t *Table) Insert(tup types.Tuple) error {
	if len(tup) != t.Schema.Len() {
		return fmt.Errorf("catalog: tuple arity %d does not match %s%s", len(tup), t.Name, t.Schema)
	}
	rid, err := t.Heap.Append(tup)
	if err != nil {
		return err
	}
	for col, idx := range t.Indexes {
		idx.Tree.Insert(tup[col], rid)
	}
	t.statsMu.Lock()
	t.UpdatesSinceAnalyze++
	t.statsMu.Unlock()
	return nil
}

// Catalog is the set of tables in a database.
type Catalog struct {
	mu     sync.RWMutex
	pool   *storage.BufferPool
	tables map[string]*Table
	txns   *storage.TxnManager

	// version counts persistent-statistics changes: CREATE TABLE, DROP
	// of a non-temp table, CREATE INDEX, ANALYZE, and every committed
	// write transaction. In-flight queries compare it against the value
	// they planned under to detect write-driven staleness.
	version atomic.Int64

	// schemaVersion counts structural changes only — CREATE/DROP TABLE
	// and CREATE INDEX — so the plan cache can separate "the world
	// changed shape" (invalidate everything) from "one table's stats
	// moved" (invalidate only plans referencing it).
	schemaVersion atomic.Int64
}

// StatsVersion returns the current persistent-statistics version. It
// increases monotonically whenever DDL, ANALYZE, or a committing write
// transaction changes what the optimizer would see; temp-table
// registration does not affect it.
func (c *Catalog) StatsVersion() int64 { return c.version.Load() }

// SchemaVersion returns the structural version: CREATE/DROP TABLE and
// CREATE INDEX bump it, writes and ANALYZE do not.
func (c *Catalog) SchemaVersion() int64 { return c.schemaVersion.Load() }

// TableVersion returns the named table's statistics version, or -1 if no
// such table exists (so cached plans referencing a dropped-and-recreated
// table never validate against the new table's counter by accident).
func (c *Catalog) TableVersion(name string) int64 {
	t, err := c.Table(name)
	if err != nil {
		return -1
	}
	return t.Version()
}

// New returns an empty catalog over the given buffer pool.
func New(pool *storage.BufferPool) *Catalog {
	return &Catalog{
		pool:   pool,
		tables: make(map[string]*Table),
		txns:   storage.NewTxnManager(),
	}
}

// Pool returns the buffer pool tables are stored in.
func (c *Catalog) Pool() *storage.BufferPool { return c.pool }

// Txns returns the catalog's transaction manager.
func (c *Catalog) Txns() *storage.TxnManager { return c.txns }

// CreateTable registers a new empty table. Column table qualifiers are
// forced to the table name.
func (c *Catalog) CreateTable(name string, schema *types.Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	cols := make([]types.Column, schema.Len())
	for i, col := range schema.Columns {
		col.Table = strings.ToLower(name)
		cols[i] = col
	}
	t := &Table{
		Name:     strings.ToLower(name),
		Schema:   types.NewSchema(cols...),
		Heap:     storage.NewStampedHeapFile(c.pool),
		Indexes:  make(map[int]*Index),
		ColStats: make(map[int]*ColumnStats),
	}
	c.tables[key] = t
	c.version.Add(1)
	c.schemaVersion.Add(1)
	return t, nil
}

// DropTable removes a table from the catalog. Its heap pages remain on
// the simulated disk unless the heap was a temp file.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, key)
	if !t.Temp {
		c.version.Add(1)
		c.schemaVersion.Add(1)
	}
	return t.Heap.Drop()
}

// RegisterTemp registers an already-populated heap file (a materialized
// intermediate result) as a queryable table. The re-optimizer uses this
// to make Temp1 visible to the re-submitted remainder query (§2.4).
func (c *Catalog) RegisterTemp(name string, schema *types.Schema, heap *storage.HeapFile) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	cols := make([]types.Column, schema.Len())
	for i, col := range schema.Columns {
		col.Table = key
		cols[i] = col
	}
	t := &Table{
		Name:     key,
		Schema:   types.NewSchema(cols...),
		Heap:     heap,
		Indexes:  make(map[int]*Index),
		ColStats: make(map[int]*ColumnStats),
		Temp:     true,
	}
	t.Cardinality = float64(heap.NumTuples())
	if heap.NumTuples() > 0 {
		t.AvgTupleBytes = float64(heap.ByteSize()) / float64(heap.NumTuples())
	}
	c.tables[key] = t
	return t, nil
}

// RegisterVirtual registers a provider-backed system table (the mqr
// schema). The heap is an empty placeholder so planner arithmetic and
// vacuum walks see an ordinary (if tiny) table; the nominal cardinality
// gives the optimizer something nonzero to cost scans with. Unlike temp
// tables, virtual tables are permanent and visible to every session.
func (c *Catalog) RegisterVirtual(name string, schema *types.Schema, provider func() []types.Tuple) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if old, ok := c.tables[key]; ok {
		if old.Virtual == nil {
			return nil, fmt.Errorf("catalog: table %q already exists", name)
		}
		// Re-registration rebinds the provider (like the metrics
		// registry's func-backed series): a second engine built over a
		// shared catalog must not read the first one's torn-down state.
		// Callers must rebind before running queries — scans read the
		// provider without a lock.
		old.Virtual = provider
		return old, nil
	}
	cols := make([]types.Column, schema.Len())
	for i, col := range schema.Columns {
		col.Table = key
		cols[i] = col
	}
	t := &Table{
		Name:     key,
		Schema:   types.NewSchema(cols...),
		Heap:     storage.NewHeapFile(c.pool),
		Indexes:  make(map[int]*Index),
		ColStats: make(map[int]*ColumnStats),
		Virtual:  provider,
	}
	t.Cardinality = 16
	t.AvgTupleBytes = 64
	c.tables[key] = t
	return t, nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// TempTables returns the names of all currently registered temp tables
// in sorted order. After a query ends — normally or aborted — none of
// its temps should remain; the leak-check tests assert on this.
func (c *Catalog) TempTables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var names []string
	for n, t := range c.tables {
		if t.Temp {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Tables returns all table names in sorted order.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateIndex builds a B+tree on the named column of the named table,
// charging build I/O to the disk's meter.
func (c *Catalog) CreateIndex(table, column string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	col, err := t.Schema.Resolve("", column)
	if err != nil {
		return err
	}
	if _, ok := t.Indexes[col]; ok {
		return fmt.Errorf("catalog: index on %s.%s already exists", table, column)
	}
	tree := storage.NewBTree(c.pool.Disk().Meter())
	s := t.Heap.Scan().WithSnapshot(c.txns.LatestSnapshot())
	// The clustering factor is measured during the build scan: the
	// fraction of heap-order transitions where the key does not
	// decrease. 1.0 means index order equals storage order, so
	// index-driven fetches walk the heap sequentially.
	var prev types.Value
	var total, ordered float64
	first := true
	for s.Next() {
		v := s.Tuple()[col]
		tree.Insert(v, s.RID())
		if !first {
			total++
			if v.Compare(prev) >= 0 {
				ordered++
			}
		}
		prev = v
		first = false
	}
	if s.Err() != nil {
		return s.Err()
	}
	clustering := 1.0
	if total > 0 {
		clustering = ordered / total
	}
	t.Indexes[col] = &Index{Tree: tree, Clustering: clustering}
	t.version.Add(1)
	c.version.Add(1)
	c.schemaVersion.Add(1)
	return nil
}

// AnalyzeOptions controls statistics collection.
type AnalyzeOptions struct {
	// Family selects the histogram family stored in the catalog.
	Family histogram.Family
	// Buckets is the number of histogram buckets (default 20).
	Buckets int
	// Columns restricts analysis to the named columns; nil means all.
	Columns []string
	// SkipHistograms computes only cardinality, min/max and distinct
	// counts — modelling a catalog with no histograms, the "high
	// inaccuracy potential" configuration.
	SkipHistograms bool
}

// Analyze scans a table once and refreshes its statistics.
func (c *Catalog) Analyze(table string, opts AnalyzeOptions) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	if opts.Buckets <= 0 {
		opts.Buckets = 20
	}
	want := make(map[int]bool)
	if opts.Columns == nil {
		for i := range t.Schema.Columns {
			want[i] = true
		}
	} else {
		for _, name := range opts.Columns {
			i, err := t.Schema.Resolve("", name)
			if err != nil {
				return err
			}
			want[i] = true
		}
	}

	vals := make(map[int][]types.Value)
	nulls := make(map[int]float64)
	var count float64
	var bytes float64
	s := t.Heap.Scan().WithSnapshot(c.txns.LatestSnapshot())
	for s.Next() {
		tup := s.Tuple()
		count++
		bytes += float64(types.EncodedSize(tup))
		for col := range want {
			v := tup[col]
			if v.IsNull() {
				nulls[col]++
				continue
			}
			vals[col] = append(vals[col], v)
		}
	}
	if s.Err() != nil {
		return s.Err()
	}

	// Build the new statistics off-lock, then publish atomically.
	newStats := make(map[int]*ColumnStats, len(want))
	for col := range want {
		cs := &ColumnStats{nulls: nulls[col]}
		vs := vals[col]
		if count > 0 {
			cs.NullFrac = nulls[col] / count
		}
		if len(vs) > 0 {
			mn, mx := vs[0], vs[0]
			for _, v := range vs[1:] {
				if v.Compare(mn) < 0 {
					mn = v
				}
				if v.Compare(mx) > 0 {
					mx = v
				}
			}
			cs.Min, cs.Max = mn, mx
			h := histogram.Build(opts.Family, vs, opts.Buckets, 0)
			cs.Distinct = h.TotalDistinct
			if !opts.SkipHistograms {
				cs.Hist = h
			}
			// Seed the FM sketch with the scanned values so committed
			// inserts after this ANALYZE keep the distinct estimate
			// moving without another full scan.
			cs.Sketch = sketch.NewHybridDistinct(sketchThreshold, sketchBitmaps)
			for _, v := range vs {
				cs.Sketch.Add(v)
			}
		}
		newStats[col] = cs
	}

	t.statsMu.Lock()
	t.Cardinality = count
	if count > 0 {
		t.AvgTupleBytes = bytes / count
	}
	merged := make(map[int]*ColumnStats, len(t.ColStats)+len(newStats))
	for col, cs := range t.ColStats {
		merged[col] = cs
	}
	for col, cs := range newStats {
		merged[col] = cs
	}
	t.ColStats = merged
	t.UpdatesSinceAnalyze = 0
	t.statsMu.Unlock()
	t.version.Add(1)
	c.version.Add(1)
	return nil
}

// Sketch sizing for per-column distinct maintenance: exact up to 4096
// distinct values, then a 64-bitmap PCSA sketch (~10% standard error).
const (
	sketchThreshold = 4096
	sketchBitmaps   = 64
)

// Vacuum physically removes dead tuple versions — deleted by committed
// transactions below the GC horizon — from every non-temp table. It
// returns the number of versions removed. Index entries pointing at
// removed versions remain and are skipped at fetch time.
func (c *Catalog) Vacuum() (int64, error) {
	c.mu.RLock()
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		if !t.Temp && t.Heap.Stamped() {
			tables = append(tables, t)
		}
	}
	c.mu.RUnlock()
	horizon := c.txns.Horizon()
	var removed int64
	for _, t := range tables {
		n, err := t.Heap.Sweep(horizon, c.txns.IsActive)
		removed += n
		if err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// DeadVersions counts tuple versions stamped deleted across all non-temp
// tables — committed-dead plus in-flight deletions. The differential
// fuzz harness asserts this drains to zero after quiescence and Vacuum.
func (c *Catalog) DeadVersions() (int64, error) {
	c.mu.RLock()
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		if !t.Temp && t.Heap.Stamped() {
			tables = append(tables, t)
		}
	}
	c.mu.RUnlock()
	var total int64
	for _, t := range tables {
		n, err := t.Heap.DeadVersions()
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
