package tpcd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
)

func loadTest(t *testing.T, cfg Config) *catalog.Catalog {
	t.Helper()
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(m), 4096))
	if err := Load(cat, cfg); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestLoadCreatesAllTables(t *testing.T) {
	cat := loadTest(t, Config{SF: 0.001, Seed: 1})
	want := []string{"customer", "lineitem", "nation", "orders", "part", "partsupp", "region", "supplier"}
	got := cat.Tables()
	if len(got) != len(want) {
		t.Fatalf("tables = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("table[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRowCountsScale(t *testing.T) {
	cfg := Config{SF: 0.002, Seed: 1}
	cat := loadTest(t, cfg)
	rows := cfg.Rows()
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders"} {
		tbl, _ := cat.Table(name)
		if int(tbl.Heap.NumTuples()) != rows[name] {
			t.Errorf("%s: %d rows, want %d", name, tbl.Heap.NumTuples(), rows[name])
		}
	}
	// Lineitem is stochastic (1-7 lines per order, mean 4).
	li, _ := cat.Table("lineitem")
	orders := float64(rows["orders"])
	if got := float64(li.Heap.NumTuples()); got < orders*2 || got > orders*6 {
		t.Errorf("lineitem rows = %g for %g orders", got, orders)
	}
}

func TestForeignKeysInRange(t *testing.T) {
	cfg := Config{SF: 0.001, Seed: 3}
	cat := loadTest(t, cfg)
	rows := cfg.Rows()
	orders, _ := cat.Table("orders")
	custCol, _ := orders.Schema.Resolve("", "o_custkey")
	s := orders.Heap.Scan()
	for s.Next() {
		ck := s.Tuple()[custCol].Int()
		if ck < 1 || ck > int64(rows["customer"]) {
			t.Fatalf("o_custkey %d out of range", ck)
		}
	}
	nation, _ := cat.Table("nation")
	regCol, _ := nation.Schema.Resolve("", "n_regionkey")
	ns := nation.Heap.Scan()
	for ns.Next() {
		if rk := ns.Tuple()[regCol].Int(); rk < 0 || rk > 4 {
			t.Fatalf("n_regionkey %d out of range", rk)
		}
	}
}

func TestStatisticsAndIndexesBuilt(t *testing.T) {
	cat := loadTest(t, Config{SF: 0.001, Seed: 1})
	orders, _ := cat.Table("orders")
	if orders.Cardinality <= 0 {
		t.Error("orders not analyzed")
	}
	okCol, _ := orders.Schema.Resolve("", "o_orderkey")
	if orders.Indexes[okCol] == nil {
		t.Error("no index on o_orderkey")
	}
	dateCol, _ := orders.Schema.Resolve("", "o_orderdate")
	if cs := orders.ColStats[dateCol]; cs == nil || !cs.HasHistogram() {
		t.Error("no histogram on o_orderdate")
	}
}

func TestSkipFlags(t *testing.T) {
	cat := loadTest(t, Config{SF: 0.001, Seed: 1, SkipIndexes: true, SkipAnalyze: true})
	orders, _ := cat.Table("orders")
	if len(orders.Indexes) != 0 {
		t.Error("indexes built despite SkipIndexes")
	}
	if orders.Cardinality != 0 {
		t.Error("analyzed despite SkipAnalyze")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	sum := func() float64 {
		cat := loadTest(t, Config{SF: 0.001, Seed: 42})
		li, _ := cat.Table("lineitem")
		col, _ := li.Schema.Resolve("", "l_extendedprice")
		total := 0.0
		s := li.Heap.Scan()
		for s.Next() {
			total += s.Tuple()[col].Float()
		}
		return total
	}
	if a, b := sum(), sum(); a != b {
		t.Errorf("same seed produced different data: %g vs %g", a, b)
	}
}

func TestZipfSkewsDistribution(t *testing.T) {
	// With z = 0.6, the most frequent supplier key in lineitem should
	// carry far more than its uniform share.
	maxShare := func(z float64) float64 {
		cat := loadTest(t, Config{SF: 0.002, Seed: 5, Zipf: z})
		li, _ := cat.Table("lineitem")
		col, _ := li.Schema.Resolve("", "l_suppkey")
		counts := map[int64]int{}
		total := 0
		s := li.Heap.Scan()
		for s.Next() {
			counts[s.Tuple()[col].Int()]++
			total++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(total)
	}
	uniform := maxShare(0)
	skewed := maxShare(0.6)
	if skewed <= uniform*1.5 {
		t.Errorf("z=0.6 max share %.4f not clearly above uniform %.4f", skewed, uniform)
	}
}

func TestZipfSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(100, 1.0, rng)
	if z.N() != 100 {
		t.Errorf("N = %d", z.N())
	}
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be roughly 1/H(100) ≈ 19% of draws; rank 99 tiny.
	share0 := float64(counts[0]) / 100000
	if math.Abs(share0-0.19) > 0.05 {
		t.Errorf("rank-0 share = %.3f, want ~0.19", share0)
	}
	if counts[99] >= counts[0] {
		t.Error("tail rank as frequent as head")
	}
	// z=0 is uniform.
	u := NewZipf(10, 0, rng)
	uc := make([]int, 10)
	for i := 0; i < 50000; i++ {
		uc[u.Next()]++
	}
	for r, c := range uc {
		if math.Abs(float64(c)-5000) > 600 {
			t.Errorf("uniform rank %d count %d", r, c)
		}
	}
}

func TestQueriesWellFormed(t *testing.T) {
	qs := Queries()
	if len(qs) != 7 {
		t.Fatalf("%d queries", len(qs))
	}
	classes := map[string]Class{
		"Q1": Simple, "Q6": Simple, "Q3": Medium, "Q10": Medium,
		"Q5": Complex, "Q7": Complex, "Q8": Complex,
	}
	for _, q := range qs {
		if q.Class != classes[q.Name] {
			t.Errorf("%s class = %s", q.Name, q.Class)
		}
	}
	if _, err := ByName("Q5"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("Q99"); err == nil {
		t.Error("unknown query accepted")
	}
}
