package tpcd

import "fmt"

// The paper's query set (§3.2): Q1 and Q6 are "simple" (zero or one
// join), Q3 and Q10 "medium" (two or three joins), Q5, Q7 and Q8
// "complex" (four or more joins). Aggregates over expressions are
// replaced with simple aggregates, exactly as the paper's footnote 4
// describes ("SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)) → SUM(L_EXTENDEDPRICE)"),
// and predicates outside our SQL subset (OR of nation pairs in Q7, CASE
// in Q8) are fixed to one representative branch.

// Class groups queries by the paper's join-count taxonomy.
type Class string

// The paper's three query classes.
const (
	Simple  Class = "simple"
	Medium  Class = "medium"
	Complex Class = "complex"
)

// Query is one benchmark query.
type Query struct {
	Name  string
	Class Class
	Joins int
	SQL   string
}

// Queries returns the paper's seven TPC-D queries in report order.
func Queries() []Query {
	return []Query{
		{Name: "Q1", Class: Simple, Joins: 0, SQL: q1},
		{Name: "Q6", Class: Simple, Joins: 0, SQL: q6},
		{Name: "Q3", Class: Medium, Joins: 2, SQL: q3},
		{Name: "Q10", Class: Medium, Joins: 3, SQL: q10},
		{Name: "Q5", Class: Complex, Joins: 5, SQL: q5},
		{Name: "Q7", Class: Complex, Joins: 5, SQL: q7},
		{Name: "Q8", Class: Complex, Joins: 7, SQL: q8},
	}
}

// ByName returns one query.
func ByName(name string) (Query, error) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("tpcd: no query %q", name)
}

const q1 = `
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_price,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date '1998-09-02'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus`

const q6 = `
select sum(l_extendedprice) as revenue, count(*) as matched
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate < date '1995-01-01'
  and l_discount between 0.05 and 0.07
  and l_quantity < 24`

const q3 = `
select l_orderkey, sum(l_extendedprice) as revenue, o_orderdate, o_shippriority
from customer, orders, lineitem
where c_mktsegment = 'BUILDING'
  and customer.c_custkey = orders.o_custkey
  and lineitem.l_orderkey = orders.o_orderkey
  and o_orderdate < date '1995-03-15'
  and l_shipdate > date '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc
limit 10`

const q10 = `
select c_custkey, c_name, sum(l_extendedprice) as revenue, n_name
from customer, orders, lineitem, nation
where customer.c_custkey = orders.o_custkey
  and lineitem.l_orderkey = orders.o_orderkey
  and o_orderdate >= date '1993-10-01'
  and o_orderdate < date '1994-01-01'
  and l_returnflag = 'R'
  and customer.c_nationkey = nation.n_nationkey
group by c_custkey, c_name, n_name
order by revenue desc
limit 20`

const q5 = `
select n_name, sum(l_extendedprice) as revenue
from customer, orders, lineitem, supplier, nation, region
where customer.c_custkey = orders.o_custkey
  and lineitem.l_orderkey = orders.o_orderkey
  and lineitem.l_suppkey = supplier.s_suppkey
  and customer.c_nationkey = supplier.s_nationkey
  and supplier.s_nationkey = nation.n_nationkey
  and nation.n_regionkey = region.r_regionkey
  and r_name = 'ASIA'
  and o_orderdate >= date '1994-01-01'
  and o_orderdate < date '1995-01-01'
group by n_name
order by revenue desc`

const q7 = `
select n1.n_name as supp_nation, n2.n_name as cust_nation, sum(l_extendedprice) as revenue
from supplier, lineitem, orders, customer, nation n1, nation n2
where supplier.s_suppkey = lineitem.l_suppkey
  and orders.o_orderkey = lineitem.l_orderkey
  and customer.c_custkey = orders.o_custkey
  and supplier.s_nationkey = n1.n_nationkey
  and customer.c_nationkey = n2.n_nationkey
  and n1.n_name = 'FRANCE'
  and n2.n_name = 'GERMANY'
  and l_shipdate between date '1995-01-01' and date '1996-12-31'
group by n1.n_name, n2.n_name
order by supp_nation`

const q8 = `
select n2.n_name as supp_nation, sum(l_extendedprice) as volume, count(*) as orders_cnt
from part, supplier, lineitem, orders, customer, nation n1, nation n2, region
where part.p_partkey = lineitem.l_partkey
  and supplier.s_suppkey = lineitem.l_suppkey
  and lineitem.l_orderkey = orders.o_orderkey
  and orders.o_custkey = customer.c_custkey
  and customer.c_nationkey = n1.n_nationkey
  and n1.n_regionkey = region.r_regionkey
  and r_name = 'AMERICA'
  and supplier.s_nationkey = n2.n_nationkey
  and o_orderdate between date '1995-01-01' and date '1996-12-31'
  and p_type = 'ECONOMY ANODIZED STEEL'
group by n2.n_name
order by supp_nation`
