package tpcd

import (
	"testing"
)

func TestStaleFracLeavesCardinalityBehind(t *testing.T) {
	cfg := Config{SF: 0.002, Seed: 4, StaleFrac: 0.5}
	cat := loadTest(t, cfg)
	orders, _ := cat.Table("orders")
	actual := float64(orders.Heap.NumTuples())
	if orders.Cardinality <= 0 || orders.Cardinality >= actual {
		t.Fatalf("stale cardinality %g not below actual %g", orders.Cardinality, actual)
	}
	ratio := actual / orders.Cardinality
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("staleness ratio = %.2f, want ~2 at StaleFrac 0.5", ratio)
	}
	if !orders.StaleStats() {
		t.Error("catalog does not know it is stale (UpdatesSinceAnalyze)")
	}
}

func TestStaleFracKeepsTotalsIdentical(t *testing.T) {
	// The data itself must be identical regardless of when ANALYZE ran.
	sum := func(stale float64) float64 {
		cat := loadTest(t, Config{SF: 0.001, Seed: 9, StaleFrac: stale})
		li, _ := cat.Table("lineitem")
		col, _ := li.Schema.Resolve("", "l_extendedprice")
		total := 0.0
		s := li.Heap.Scan()
		for s.Next() {
			total += s.Tuple()[col].Float()
		}
		return total
	}
	if a, b := sum(0), sum(0.4); a != b {
		t.Errorf("StaleFrac changed the generated data: %g vs %g", a, b)
	}
}

func TestStaleFracIndexesComplete(t *testing.T) {
	// Indexes are created mid-load; second-phase inserts must maintain
	// them so every order key is probeable.
	cat := loadTest(t, Config{SF: 0.001, Seed: 4, StaleFrac: 0.3})
	orders, _ := cat.Table("orders")
	col, _ := orders.Schema.Resolve("", "o_orderkey")
	idx := orders.Indexes[col]
	if idx == nil {
		t.Fatal("no o_orderkey index")
	}
	if idx.Tree.Len() != orders.Heap.NumTuples() {
		t.Errorf("index has %d entries for %d tuples", idx.Tree.Len(), orders.Heap.NumTuples())
	}
}

func TestClusteringFactorsRecorded(t *testing.T) {
	cat := loadTest(t, Config{SF: 0.001, Seed: 4, FactIndexes: true})
	li, _ := cat.Table("lineitem")
	col, _ := li.Schema.Resolve("", "l_orderkey")
	idx := li.Indexes[col]
	if idx == nil {
		t.Fatal("no l_orderkey index despite FactIndexes")
	}
	// lineitem is generated in order-key order: near-perfect clustering.
	if idx.Clustering < 0.95 {
		t.Errorf("l_orderkey clustering = %.2f, want ~1", idx.Clustering)
	}
	cust, _ := cat.Table("customer")
	ncol, _ := cust.Schema.Resolve("", "c_custkey")
	if cidx := cust.Indexes[ncol]; cidx == nil || cidx.Clustering < 0.99 {
		t.Errorf("primary key clustering should be 1, got %+v", cust.Indexes[ncol])
	}
}
