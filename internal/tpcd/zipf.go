// Package tpcd is a from-scratch TPC-D-style data generator and query
// set. The paper evaluates on TPC-D at scale factor 3 with queries Q1,
// Q3, Q5, Q6, Q7, Q8, and Q10 (§3.2); this package generates the same
// eight-table schema at a configurable scale factor and provides the
// same queries, with the paper's own simplification applied (aggregates
// over expressions replaced by simple aggregates, footnote 4).
//
// For the skew experiments (Figure 12), non-key attributes can be drawn
// from a generalized Zipfian distribution with parameter z, exactly as
// the paper modified dbgen ([27] as described in [18]).
package tpcd

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws ranks 0..n-1 with probability proportional to 1/(rank+1)^z.
// z = 0 is uniform; the paper uses z = 0.3 and z = 0.6.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks with skew z, seeded
// deterministically.
func NewZipf(n int, z float64, rng *rand.Rand) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), z)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws one rank.
func (zf *Zipf) Next() int {
	u := zf.rng.Float64()
	return sort.SearchFloat64s(zf.cdf, u)
}

// N returns the domain size.
func (zf *Zipf) N() int { return len(zf.cdf) }
