package tpcd

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/types"
)

// Config controls data generation.
type Config struct {
	// SF is the TPC-D scale factor. SF 1 corresponds to the standard
	// row counts (150k customers, 1.5M orders, ~6M lineitems); the
	// benchmarks use fractional factors with a proportionally small
	// buffer pool so the data:memory ratio matches the paper's
	// 3 GB : 32 MB regime.
	SF float64
	// Zipf skews all non-key attributes with parameter z when > 0
	// (Figure 12 uses 0.3 and 0.6).
	Zipf float64
	Seed int64
	// HistFamily selects the catalog histogram family built by the
	// post-load ANALYZE.
	HistFamily histogram.Family
	// SkipHistograms loads statistics without histograms (the "high
	// inaccuracy potential" catalog ablation).
	SkipHistograms bool
	// SkipIndexes suppresses primary-key index creation.
	SkipIndexes bool
	// FactIndexes additionally builds a secondary index on
	// lineitem.l_orderkey. Off by default: fact-table secondary
	// indexes invite indexed nested-loops joins over the fact table,
	// which never block and therefore give the dispatcher no decision
	// point — the paper's plans are hash-join-heavy, with indexed
	// joins only on dimension tables.
	FactIndexes bool
	// SkipAnalyze leaves the catalog without statistics entirely.
	SkipAnalyze bool
	// StaleFrac, when in (0,1), runs ANALYZE after only this fraction
	// of the data is loaded and then loads the rest without refreshing
	// statistics. This reproduces one of the paper's named estimation
	// error sources — "statistics are not kept up-to-date" (§1) — and
	// is what lets the re-optimization experiments observe the
	// systematic under-estimates a 1998 catalog would exhibit. The
	// catalog's update-activity counters see the second phase, so the
	// SCIA's staleness rule (§2.5) also engages.
	StaleFrac float64
}

// Rows returns the scaled cardinality of each table.
func (c Config) Rows() map[string]int {
	scale := func(n float64) int {
		v := int(c.SF * n)
		if v < 5 {
			v = 5
		}
		return v
	}
	orders := scale(1_500_000)
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": scale(10_000),
		"customer": scale(150_000),
		"part":     scale(200_000),
		"partsupp": scale(200_000) * 4,
		"orders":   orders,
		"lineitem": orders * 4, // ~4 lines per order on average
	}
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var partTypes = func() []string {
	t1 := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	t2 := []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	t3 := []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	var out []string
	for _, a := range t1 {
		for _, b := range t2 {
			for _, c := range t3 {
				out = append(out, a+" "+b+" "+c)
			}
		}
	}
	return out
}()

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

// gen wraps the deterministic random state plus skew samplers. Each
// table draws from its own random stream so that the generated data is
// bit-identical whether the load runs in one phase or two (StaleFrac
// splits every table's fill into two contiguous ranges).
type gen struct {
	cfg  Config
	rngs map[string]*rand.Rand
}

// rng returns the named table's persistent random stream.
func (g *gen) rng(table string) *rand.Rand {
	if r, ok := g.rngs[table]; ok {
		return r
	}
	var h int64
	for _, c := range table {
		h = h*131 + int64(c)
	}
	r := rand.New(rand.NewSource(g.cfg.Seed + 7 + h))
	g.rngs[table] = r
	return r
}

// pick draws an index in [0, n) — Zipf-skewed over a shuffled rank
// assignment when skew is on, uniform otherwise. The shuffle (a cheap
// multiplicative hash) keeps the heavy ranks from all being the low key
// values, as dbgen's skewed variant does.
func (g *gen) pick(r *rand.Rand, n int, zf *Zipf) int {
	if n <= 1 {
		return 0
	}
	if g.cfg.Zipf <= 0 || zf == nil {
		return r.Intn(n)
	}
	rank := zf.Next()
	return int((uint64(rank)*2654435761 + 12345) % uint64(n))
}

func dateOf(y, m, d int) types.Value {
	return types.NewDateFromTime(time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC))
}

// Load creates the eight TPC-D tables in the catalog, fills them, builds
// primary-key indexes, and refreshes catalog statistics. With StaleFrac
// set, statistics are collected mid-load and the remaining data arrives
// after them.
func Load(cat *catalog.Catalog, cfg Config) error {
	if cfg.SF <= 0 {
		cfg.SF = 0.01
	}
	g := &gen{cfg: cfg, rngs: map[string]*rand.Rand{}}
	rows := cfg.Rows()

	cut := cfg.StaleFrac
	twoPhase := cut > 0 && cut < 1
	if !twoPhase {
		cut = 1
	}

	fill := func(first bool, f0, f1 float64) error {
		span := func(table string) (int, int) {
			n := rows[table]
			return int(f0*float64(n)) + 1, int(f1 * float64(n))
		}
		if first {
			if err := g.loadRegion(cat); err != nil {
				return err
			}
			if err := g.loadNation(cat); err != nil {
				return err
			}
		}
		sFrom, sTo := span("supplier")
		if err := g.loadSupplier(cat, first, sFrom, sTo); err != nil {
			return err
		}
		cFrom, cTo := span("customer")
		if err := g.loadCustomer(cat, first, cFrom, cTo); err != nil {
			return err
		}
		ptFrom, ptTo := span("part")
		if err := g.loadPart(cat, first, ptFrom, ptTo); err != nil {
			return err
		}
		pFrom, pTo := span("part")
		if err := g.loadPartSupp(cat, first, pFrom, pTo, rows["supplier"]); err != nil {
			return err
		}
		from, to := span("orders")
		return g.loadOrdersAndLineitem(cat, first, from, to, rows["customer"], rows["part"], rows["supplier"])
	}

	if err := fill(true, 0, cut); err != nil {
		return err
	}
	if !cfg.SkipIndexes {
		indexes := [][2]string{
			{"region", "r_regionkey"}, {"nation", "n_nationkey"},
			{"supplier", "s_suppkey"}, {"customer", "c_custkey"},
			{"part", "p_partkey"}, {"orders", "o_orderkey"},
		}
		if cfg.FactIndexes {
			indexes = append(indexes, [2]string{"lineitem", "l_orderkey"})
		}
		for _, ix := range indexes {
			if err := cat.CreateIndex(ix[0], ix[1]); err != nil {
				return err
			}
		}
	}
	if !cfg.SkipAnalyze {
		for _, name := range cat.Tables() {
			opts := catalog.AnalyzeOptions{Family: cfg.HistFamily, SkipHistograms: cfg.SkipHistograms}
			if err := cat.Analyze(name, opts); err != nil {
				return err
			}
		}
	}
	if twoPhase {
		return fill(false, cut, 1)
	}
	return nil
}

func intCol(name string, key bool) types.Column {
	return types.Column{Name: name, Kind: types.KindInt, Key: key}
}

func floatCol(name string) types.Column {
	return types.Column{Name: name, Kind: types.KindFloat}
}

func strCol(name string) types.Column {
	return types.Column{Name: name, Kind: types.KindString}
}

func dateCol(name string) types.Column {
	return types.Column{Name: name, Kind: types.KindDate}
}

func (g *gen) loadRegion(cat *catalog.Catalog) error {
	t, err := cat.CreateTable("region", types.NewSchema(
		intCol("r_regionkey", true), strCol("r_name"),
	))
	if err != nil {
		return err
	}
	for i, name := range regionNames {
		if err := t.Insert(types.Tuple{types.NewInt(int64(i)), types.NewString(name)}); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) loadNation(cat *catalog.Catalog) error {
	t, err := cat.CreateTable("nation", types.NewSchema(
		intCol("n_nationkey", true), strCol("n_name"), intCol("n_regionkey", false),
	))
	if err != nil {
		return err
	}
	for i, n := range nationNames {
		if err := t.Insert(types.Tuple{
			types.NewInt(int64(i)), types.NewString(n.name), types.NewInt(n.region),
		}); err != nil {
			return err
		}
	}
	return nil
}

// table returns the named table, creating it with the schema on the
// first fill phase.
func (g *gen) table(cat *catalog.Catalog, first bool, name string, schema *types.Schema) (*catalog.Table, error) {
	if first {
		return cat.CreateTable(name, schema)
	}
	return cat.Table(name)
}

func (g *gen) loadSupplier(cat *catalog.Catalog, first bool, from, to int) error {
	t, err := g.table(cat, first, "supplier", types.NewSchema(
		intCol("s_suppkey", true), strCol("s_name"), intCol("s_nationkey", false), floatCol("s_acctbal"),
	))
	if err != nil {
		return err
	}
	r := g.rng("supplier")
	zf := NewZipf(len(nationNames), g.cfg.Zipf, r)
	for i := from; i <= to; i++ {
		if err := t.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Supplier#%09d", i)),
			types.NewInt(int64(g.pick(r, len(nationNames), zf))),
			types.NewFloat(float64(r.Intn(999999))/100 - 999.99),
		}); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) loadCustomer(cat *catalog.Catalog, first bool, from, to int) error {
	t, err := g.table(cat, first, "customer", types.NewSchema(
		intCol("c_custkey", true), strCol("c_name"), intCol("c_nationkey", false),
		floatCol("c_acctbal"), strCol("c_mktsegment"),
	))
	if err != nil {
		return err
	}
	r := g.rng("customer")
	zfNation := NewZipf(len(nationNames), g.cfg.Zipf, r)
	zfSeg := NewZipf(len(segments), g.cfg.Zipf, r)
	for i := from; i <= to; i++ {
		if err := t.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer#%09d", i)),
			types.NewInt(int64(g.pick(r, len(nationNames), zfNation))),
			types.NewFloat(float64(r.Intn(999999))/100 - 999.99),
			types.NewString(segments[g.pick(r, len(segments), zfSeg)]),
		}); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) loadPart(cat *catalog.Catalog, first bool, from, to int) error {
	t, err := g.table(cat, first, "part", types.NewSchema(
		intCol("p_partkey", true), strCol("p_name"), strCol("p_type"),
		intCol("p_size", false), floatCol("p_retailprice"),
	))
	if err != nil {
		return err
	}
	r := g.rng("part")
	zfType := NewZipf(len(partTypes), g.cfg.Zipf, r)
	zfSize := NewZipf(50, g.cfg.Zipf, r)
	for i := from; i <= to; i++ {
		if err := t.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("part %d", i)),
			types.NewString(partTypes[g.pick(r, len(partTypes), zfType)]),
			types.NewInt(int64(g.pick(r, 50, zfSize) + 1)),
			types.NewFloat(900 + float64(i%1000)),
		}); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) loadPartSupp(cat *catalog.Catalog, first bool, partFrom, partTo, supps int) error {
	t, err := g.table(cat, first, "partsupp", types.NewSchema(
		intCol("ps_partkey", false), intCol("ps_suppkey", false),
		intCol("ps_availqty", false), floatCol("ps_supplycost"),
	))
	if err != nil {
		return err
	}
	r := g.rng("partsupp")
	zfQty := NewZipf(9999, g.cfg.Zipf, r)
	for p := partFrom; p <= partTo; p++ {
		for k := 0; k < 4; k++ {
			supp := (p+k*(supps/4+1))%supps + 1
			if err := t.Insert(types.Tuple{
				types.NewInt(int64(p)),
				types.NewInt(int64(supp)),
				types.NewInt(int64(g.pick(r, 9999, zfQty) + 1)),
				types.NewFloat(float64(r.Intn(100000)) / 100),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *gen) loadOrdersAndLineitem(cat *catalog.Catalog, first bool, from, to, customers, parts, supps int) error {
	ot, err := g.table(cat, first, "orders", types.NewSchema(
		intCol("o_orderkey", true), intCol("o_custkey", false), strCol("o_orderstatus"),
		floatCol("o_totalprice"), dateCol("o_orderdate"), strCol("o_orderpriority"),
		intCol("o_shippriority", false),
	))
	if err != nil {
		return err
	}
	lt, err := g.table(cat, first, "lineitem", types.NewSchema(
		intCol("l_orderkey", false), intCol("l_partkey", false), intCol("l_suppkey", false),
		intCol("l_linenumber", false), floatCol("l_quantity"), floatCol("l_extendedprice"),
		floatCol("l_discount"), floatCol("l_tax"), strCol("l_returnflag"), strCol("l_linestatus"),
		dateCol("l_shipdate"), strCol("l_shipmode"),
	))
	if err != nil {
		return err
	}

	startDate := dateOf(1992, 1, 1).Days()
	endDate := dateOf(1998, 8, 2).Days()
	dateSpan := int(endDate - startDate)

	r := g.rng("orders")
	zfCust := NewZipf(customers, g.cfg.Zipf, r)
	zfDate := NewZipf(dateSpan, g.cfg.Zipf, r)
	zfPart := NewZipf(parts, g.cfg.Zipf, r)
	zfSupp := NewZipf(supps, g.cfg.Zipf, r)
	zfQty := NewZipf(50, g.cfg.Zipf, r)
	zfDisc := NewZipf(11, g.cfg.Zipf, r)
	zfFlag := NewZipf(3, g.cfg.Zipf, r)
	shipModes := []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	flags := []string{"R", "A", "N"}
	statuses := []string{"O", "F"}

	for o := from; o <= to; o++ {
		odate := startDate + int64(g.pick(r, dateSpan, zfDate))
		status := statuses[o%2]
		if err := ot.Insert(types.Tuple{
			types.NewInt(int64(o)),
			types.NewInt(int64(g.pick(r, customers, zfCust) + 1)),
			types.NewString(status),
			types.NewFloat(1000 + float64(r.Intn(400000))/100),
			types.NewDate(odate),
			types.NewString(priorities[r.Intn(len(priorities))]),
			types.NewInt(0),
		}); err != nil {
			return err
		}
		lines := 1 + r.Intn(7)
		for ln := 1; ln <= lines; ln++ {
			qty := float64(g.pick(r, 50, zfQty) + 1)
			price := qty * (900 + float64(r.Intn(1000)))
			ship := odate + int64(1+r.Intn(121))
			flag := "N"
			if ship < dateOf(1995, 6, 17).Days() {
				flag = flags[g.pick(r, 3, zfFlag)]
				if flag == "N" {
					flag = "A"
				}
			}
			if err := lt.Insert(types.Tuple{
				types.NewInt(int64(o)),
				types.NewInt(int64(g.pick(r, parts, zfPart) + 1)),
				types.NewInt(int64(g.pick(r, supps, zfSupp) + 1)),
				types.NewInt(int64(ln)),
				types.NewFloat(qty),
				types.NewFloat(price),
				types.NewFloat(float64(g.pick(r, 11, zfDisc)) / 100),
				types.NewFloat(float64(r.Intn(9)) / 100),
				types.NewString(flag),
				types.NewString(statuses[r.Intn(2)]),
				types.NewDate(ship),
				types.NewString(shipModes[r.Intn(len(shipModes))]),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
