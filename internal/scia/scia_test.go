package scia

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/histogram"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

type fixture struct {
	cat *catalog.Catalog
	ctx *exec.Ctx
}

// newFixture builds fact(f_id key, f_dim, f_grp, f_val) ⟗ dim(d_id key,
// d_x) with configurable histogram family.
func newFixture(t *testing.T, family histogram.Family, skipHist bool) *fixture {
	t.Helper()
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), 1024)
	cat := catalog.New(pool)
	fact, err := cat.CreateTable("fact", types.NewSchema(
		types.Column{Name: "f_id", Kind: types.KindInt, Key: true},
		types.Column{Name: "f_dim", Kind: types.KindInt},
		types.Column{Name: "f_grp", Kind: types.KindInt},
		types.Column{Name: "f_val", Kind: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8000; i++ {
		fact.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 200)),
			types.NewInt(int64(i % 40)),
			types.NewFloat(float64(i % 97)),
		})
	}
	dim, _ := cat.CreateTable("dim", types.NewSchema(
		types.Column{Name: "d_id", Kind: types.KindInt, Key: true},
		types.Column{Name: "d_x", Kind: types.KindInt},
	))
	for i := 0; i < 200; i++ {
		dim.Insert(types.Tuple{types.NewInt(int64(i)), types.NewInt(int64(i % 7))})
	}
	// dim2 is deliberately larger than the filtered fact so the DP makes
	// fact the leftmost build relation — the plan shape where fact's
	// columns are observable at actionable points.
	dim2, _ := cat.CreateTable("dim2", types.NewSchema(
		types.Column{Name: "e_id", Kind: types.KindInt, Key: true},
		types.Column{Name: "e_y", Kind: types.KindInt},
	))
	for i := 0; i < 9000; i++ {
		dim2.Insert(types.Tuple{types.NewInt(int64(i)), types.NewInt(int64(i % 7))})
	}
	opts := catalog.AnalyzeOptions{Family: family, SkipHistograms: skipHist}
	cat.Analyze("fact", opts)
	cat.Analyze("dim", opts)
	cat.Analyze("dim2", opts)
	return &fixture{cat: cat, ctx: &exec.Ctx{Pool: pool, Meter: m, Params: plan.Params{}}}
}

func (f *fixture) optimize(t *testing.T, src string) *optimizer.Result {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := optimizer.Analyze(f.cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	o := &optimizer.Optimizer{Weights: storage.DefaultCostWeights(), MemBudget: 64 << 20}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// joinGroupQuery has two hash joins, and its fact filter is selective
// enough (~1%) that fact becomes the leftmost build relation — the plan
// shape where fact's columns are observable at actionable points.
const joinGroupQuery = `select f_grp, avg(f_val) as av from fact, dim, dim2
	where fact.f_dim = dim.d_id and dim.d_x = dim2.e_id and f_val < 1 group by f_grp`

func TestInsertPlacesCollectors(t *testing.T) {
	f := newFixture(t, histogram.MaxDiff, false)
	res := f.optimize(t, joinGroupQuery)
	ins, err := Insert(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) < 2 {
		t.Fatalf("inserted %d collectors, want >= 2 (scan output + join output)", len(ins))
	}
	// The plan must still contain all collectors reachable from root.
	count := 0
	plan.Walk(res.Root, func(n plan.Node) {
		if _, ok := n.(*plan.Collector); ok {
			count++
		}
	})
	if count != len(ins) {
		t.Errorf("plan has %d collectors, Insert reported %d", count, len(ins))
	}
}

func TestInsertedPlanExecutesIdentically(t *testing.T) {
	f := newFixture(t, histogram.MaxDiff, false)
	res := f.optimize(t, joinGroupQuery)
	plain, err := exec.Collect(mustOp(t, f, res.Root))
	if err != nil {
		t.Fatal(err)
	}

	res2 := f.optimize(t, joinGroupQuery)
	if _, err := Insert(res2, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	reports := 0
	f.ctx.StatsSink = func(o *plan.Observed) { reports++ }
	collected, err := exec.Collect(mustOp(t, f, res2.Root))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(collected) {
		t.Fatalf("collector changed results: %d vs %d rows", len(plain), len(collected))
	}
	if reports == 0 {
		t.Error("no statistics reports delivered")
	}
}

func mustOp(t *testing.T, f *fixture, root plan.Node) exec.Operator {
	t.Helper()
	op, err := exec.Build(root, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestMuBudgetRespected(t *testing.T) {
	f := newFixture(t, histogram.MaxDiff, false)

	res := f.optimize(t, joinGroupQuery)
	total := res.Root.Est().Cost
	cfg := DefaultConfig()
	ins, _ := Insert(res, cfg)
	spent := 0.0
	for _, i := range ins {
		if !i.Collector.Spec.Empty() {
			spent += i.Collector.Est().SelfCost
		}
	}
	if spent > cfg.Mu*total*1.001 {
		t.Errorf("collection cost %.2f exceeds mu budget %.2f", spent, cfg.Mu*total)
	}

	// A near-zero mu keeps the free cardinality collectors but drops
	// all priced statistics.
	res2 := f.optimize(t, joinGroupQuery)
	cfg.Mu = 1e-9
	ins2, _ := Insert(res2, cfg)
	for _, i := range ins2 {
		if !i.Collector.Spec.Empty() {
			t.Errorf("stat %v chosen under mu=0", i.Stats)
		}
	}
	if len(ins2) == 0 {
		t.Error("free collectors missing under tiny mu")
	}
}

func TestGroupByUniqueCandidateChosen(t *testing.T) {
	f := newFixture(t, histogram.MaxDiff, false)
	res := f.optimize(t, joinGroupQuery)
	ins, _ := Insert(res, DefaultConfig())
	// The unique-count stat must be collected at the earliest point
	// whose schema contains f_grp. With dim as the build side, that is
	// the first point carrying fact's columns.
	earliest := -1
	for idx, i := range ins {
		sch := i.Collector.Input.Schema()
		if _, err := sch.Resolve("fact", "f_grp"); err == nil {
			earliest = idx
			break
		}
	}
	if earliest < 0 {
		t.Fatal("no collection point carries fact.f_grp")
	}
	found := false
	for idx, i := range ins {
		if len(i.Collector.Spec.UniqueCols) > 0 {
			found = true
			if idx != earliest {
				t.Errorf("unique collector at point %d (%s), want earliest %d", idx, i.Point, earliest)
			}
		}
	}
	if !found {
		t.Error("no unique-count collector for GROUP BY (high inaccuracy potential should rank first)")
	}
}

func TestLevelsBaseHistogramFamilies(t *testing.T) {
	cases := []struct {
		family histogram.Family
		skip   bool
		want   Level
	}{
		{histogram.MaxDiff, false, Low},
		{histogram.EndBiased, false, Low},
		{histogram.EquiWidth, false, Medium},
		{histogram.EquiDepth, false, Medium},
		{histogram.MaxDiff, true, High}, // no histograms stored
	}
	for _, c := range cases {
		f := newFixture(t, c.family, c.skip)
		res := f.optimize(t, "select f_id from fact where f_val < 10")
		lt := newLevelTracer(res)
		if got := lt.baseColLevel("fact", "f_val"); got != c.want {
			t.Errorf("family=%v skip=%v: level = %v, want %v", c.family, c.skip, got, c.want)
		}
	}
}

func TestLevelsStaleBump(t *testing.T) {
	f := newFixture(t, histogram.MaxDiff, false)
	res := f.optimize(t, "select f_id from fact where f_val < 10")
	tbl, _ := f.cat.Table("fact")
	lt := newLevelTracer(res)
	if got := lt.baseColLevel("fact", "f_val"); got != Low {
		t.Fatalf("fresh level = %v", got)
	}
	tbl.UpdatesSinceAnalyze = int64(tbl.Cardinality) // heavy churn
	if got := lt.baseColLevel("fact", "f_val"); got != Medium {
		t.Errorf("stale level = %v, want Medium", got)
	}
}

func TestLevelsMultiAttrAndHostVar(t *testing.T) {
	f := newFixture(t, histogram.MaxDiff, false)
	res := f.optimize(t, "select f_id from fact where f_val < 10")
	lt := newLevelTracer(res)

	parsePred := func(cond string) sql.Predicate {
		stmt, err := sql.Parse("select f_id from fact where " + cond)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.Where[0]
	}
	if got := lt.filterLevel("fact", parsePred("f_val < 10")); got != Low {
		t.Errorf("single-attr filter = %v, want Low", got)
	}
	// Two attributes of the same relation: correlation risk, bump.
	if got := lt.filterLevel("fact", parsePred("f_val < f_grp")); got != Medium {
		t.Errorf("multi-attr filter = %v, want Medium", got)
	}
	// Host variable: unknowable selectivity.
	if got := lt.filterLevel("fact", parsePred("f_val < :v")); got != High {
		t.Errorf("host-var filter = %v, want High", got)
	}
}

func TestLevelsJoinKeyRule(t *testing.T) {
	f := newFixture(t, histogram.MaxDiff, false)
	// fact.f_dim = dim.d_id: d_id is a key, so the join keeps its
	// inputs' level.
	res := f.optimize(t, "select f_id from fact, dim where fact.f_dim = dim.d_id")
	lt := newLevelTracer(res)
	var join *plan.HashJoin
	plan.Walk(res.Root, func(n plan.Node) {
		if j, ok := n.(*plan.HashJoin); ok {
			join = j
		}
	})
	if join == nil {
		t.Skip("planner chose index join; key rule covered elsewhere")
	}
	if got := lt.pointLevel(join); got != Low {
		t.Errorf("key equi-join level = %v, want Low", got)
	}

	// fact.f_grp = dim.d_x: neither is a key — bump.
	res2 := f.optimize(t, "select f_id from fact, dim where fact.f_grp = dim.d_x")
	lt2 := newLevelTracer(res2)
	var join2 plan.Node
	plan.Walk(res2.Root, func(n plan.Node) {
		switch n.(type) {
		case *plan.HashJoin, *plan.IndexJoin:
			join2 = n
		}
	})
	if got := lt2.pointLevel(join2); got != Medium {
		t.Errorf("non-key equi-join level = %v, want Medium", got)
	}
}

func TestLevelsOrdering(t *testing.T) {
	if !(Low < Medium && Medium < High) {
		t.Fatal("level ordering broken")
	}
	if High.bump() != High {
		t.Error("bump must saturate")
	}
	if Low.String() != "low" || High.String() != "high" {
		t.Error("level names")
	}
}

func TestSingleTableNoUsefulStats(t *testing.T) {
	f := newFixture(t, histogram.MaxDiff, false)
	// No joins, no group by: nothing priced to collect; the free
	// cardinality collector on the scan remains.
	res := f.optimize(t, "select f_id from fact where f_val < 10")
	ins, err := Insert(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range ins {
		if !i.Collector.Spec.Empty() {
			t.Errorf("unexpected priced stats on single-table query: %v", i.Stats)
		}
	}
}
