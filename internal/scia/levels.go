package scia

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
)

// levelTracer evaluates the paper's inaccuracy-potential rules (§2.5)
// over an annotated plan:
//
//   - a base-table histogram is low for serial-class histograms
//     (MaxDiff, end-biased), medium for equi-width/equi-depth, high when
//     absent;
//   - significant update activity since the last ANALYZE bumps every
//     level one grade;
//   - a simple one-column selection keeps its input's level; a selection
//     over two or more columns of the relation bumps it (possible
//     correlations); predicates with host variables are graded high
//     (their selectivity is unknowable at plan time, like the paper's
//     user-defined functions);
//   - an equi-join on key attributes keeps the max of its inputs; on
//     non-key attributes it bumps; non-equi joins are high;
//   - distinct-value counts are low only on raw base-table columns and
//     high at every intermediate point.
type levelTracer struct {
	rels map[string]*catalog.Table // binding -> table
}

func newLevelTracer(res *optimizer.Result) *levelTracer {
	lt := &levelTracer{rels: make(map[string]*catalog.Table, len(res.Query.Rels))}
	for i := range res.Query.Rels {
		rel := &res.Query.Rels[i]
		lt.rels[rel.Binding] = rel.Table
	}
	return lt
}

// baseColLevel grades the catalog statistics for one column.
func (lt *levelTracer) baseColLevel(binding, name string) Level {
	t, ok := lt.rels[strings.ToLower(binding)]
	if !ok {
		return High
	}
	col, err := t.Schema.Resolve("", name)
	if err != nil {
		return High
	}
	cs := t.ColStat(col)
	var l Level
	switch {
	case cs.HasHistogram() && cs.Hist.Family.Class() == histogram.ClassSerial:
		l = Low
	case cs.HasHistogram():
		l = Medium
	default:
		l = High
	}
	if t.StaleStats() {
		l = l.bump()
	}
	return l
}

// isKeyColumn reports whether the named base column is a declared key.
func (lt *levelTracer) isKeyColumn(binding, name string) bool {
	t, ok := lt.rels[strings.ToLower(binding)]
	if !ok {
		return false
	}
	col, err := t.Schema.Resolve("", name)
	if err != nil {
		return false
	}
	return t.Schema.Columns[col].Key
}

// pointLevel grades the optimizer's cardinality estimate for the output
// of a plan node.
func (lt *levelTracer) pointLevel(n plan.Node) Level {
	switch x := n.(type) {
	case *plan.Scan:
		l := Low
		for _, p := range x.FilterSQL {
			l = maxLevel(l, lt.filterLevel(x.Binding, p))
		}
		return l
	case *plan.Collector:
		return lt.pointLevel(x.Input)
	case *plan.Filter:
		// Residual filters carry non-equi or cross-relation
		// conditions: high, per the non-equi-join rule.
		return High
	case *plan.HashJoin:
		l := maxLevel(lt.pointLevel(x.Build), lt.pointLevel(x.Probe))
		if !lt.joinOnKeys(x) {
			l = l.bump()
		}
		return l
	case *plan.IndexJoin:
		l := lt.pointLevel(x.Outer)
		// Grade the inner side like a scan with its filters.
		inner := Low
		for _, p := range x.InnerSQL {
			inner = maxLevel(inner, lt.filterLevel(x.Binding, p))
		}
		l = maxLevel(l, inner)
		oc := x.Outer.Schema().Columns[x.OuterKey]
		ic := x.InnerOut.Columns[x.InnerCol]
		if !lt.isKeyColumn(oc.Table, oc.Name) && !lt.isKeyColumn(ic.Table, ic.Name) {
			l = l.bump()
		}
		return l
	default:
		return High
	}
}

// joinOnKeys reports whether at least one side of every hash-join key
// pair is a declared key — the case the paper grades as accurately
// estimable.
func (lt *levelTracer) joinOnKeys(j *plan.HashJoin) bool {
	bs, ps := j.Build.Schema(), j.Probe.Schema()
	for i := range j.BuildKeys {
		bc := bs.Columns[j.BuildKeys[i]]
		pc := ps.Columns[j.ProbeKeys[i]]
		if !lt.isKeyColumn(bc.Table, bc.Name) && !lt.isKeyColumn(pc.Table, pc.Name) {
			return false
		}
	}
	return len(j.BuildKeys) > 0
}

// filterLevel grades a selection predicate applied to one relation.
func (lt *levelTracer) filterLevel(binding string, p sql.Predicate) Level {
	if predHasHostVar(p) {
		return High
	}
	cols := predColumns(p)
	l := Low
	for _, name := range cols {
		l = maxLevel(l, lt.baseColLevel(binding, name))
	}
	if len(cols) >= 2 {
		// Multiple attributes of the relation: possible correlations
		// the per-column histograms cannot capture.
		l = l.bump()
	}
	return l
}

// predColumns lists the distinct column names a predicate references.
func predColumns(p sql.Predicate) []string {
	var exprs []sql.Expr
	switch x := p.(type) {
	case *sql.ComparePred:
		exprs = []sql.Expr{x.Left, x.Right}
	case *sql.BetweenPred:
		exprs = []sql.Expr{x.Expr, x.Lo, x.Hi}
	case *sql.InPred:
		exprs = append([]sql.Expr{x.Expr}, x.List...)
	case *sql.LikePred:
		exprs = []sql.Expr{x.Expr}
	}
	seen := map[string]bool{}
	var out []string
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.ColumnRef:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *sql.BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *sql.AggExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return out
}

func predHasHostVar(p sql.Predicate) bool {
	var exprs []sql.Expr
	switch x := p.(type) {
	case *sql.ComparePred:
		exprs = []sql.Expr{x.Left, x.Right}
	case *sql.BetweenPred:
		exprs = []sql.Expr{x.Expr, x.Lo, x.Hi}
	case *sql.InPred:
		exprs = append([]sql.Expr{x.Expr}, x.List...)
	case *sql.LikePred:
		exprs = []sql.Expr{x.Expr}
	}
	var has func(e sql.Expr) bool
	has = func(e sql.Expr) bool {
		switch x := e.(type) {
		case *sql.HostVar:
			return true
		case *sql.BinaryExpr:
			return has(x.Left) || has(x.Right)
		case *sql.AggExpr:
			return x.Arg != nil && has(x.Arg)
		}
		return false
	}
	for _, e := range exprs {
		if has(e) {
			return true
		}
	}
	return false
}
