// Package scia implements the statistics-collectors insertion algorithm
// of §2.5: a post-optimization pass that decides which run-time
// statistics are worth collecting and inserts statistics-collector
// operators into the annotated plan.
//
// Candidate statistics are ranked by effectiveness — first by the
// inaccuracy potential of the optimizer estimate they would check
// (low/medium/high, propagated through the plan by the paper's rules),
// then by the fraction of the not-yet-executed plan they affect — and
// accepted greedily until their total collection cost reaches the budget
// μ × T_cur-plan,optimizer. Cardinality/size collectors are free and are
// inserted at every pipeline boundary regardless.
package scia

import (
	"fmt"
	"math"

	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Level is an inaccuracy potential grade.
type Level uint8

// The paper's three grades.
const (
	Low Level = iota
	Medium
	High
)

// String renders the grade.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	default:
		return "high"
	}
}

// bump raises a level by one, saturating at High.
func (l Level) bump() Level {
	if l >= High {
		return High
	}
	return l + 1
}

func maxLevel(a, b Level) Level {
	if a > b {
		return a
	}
	return b
}

// Config tunes the insertion algorithm.
type Config struct {
	// Mu is the maximum acceptable statistics-collection overhead as a
	// fraction of the estimated query execution time (default 0.05,
	// the paper's setting).
	Mu float64
	// HistFamily is the family run-time histograms are built with.
	HistFamily histogram.Family
	// Weights prices the collection work.
	Weights storage.CostWeights
	// Seed makes reservoir sampling deterministic.
	Seed int64
	// Trace, when non-nil, receives one "scia" event per accepted
	// statistic (placement, inaccuracy level, effectiveness rank, cost)
	// plus a budget summary.
	Trace *obs.Trace
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{Mu: 0.05, HistFamily: histogram.MaxDiff, Weights: storage.DefaultCostWeights()}
}

// Inserted describes one collector placed into the plan.
type Inserted struct {
	Collector *plan.Collector
	// Point is a human-readable description of the plan position.
	Point string
	// Stats lists the chosen statistics for diagnostics.
	Stats []string
}

// candidate is one potentially-useful statistic.
type candidate struct {
	point    int // index into spine points
	isUnique bool
	cols     []int // schema ordinals at the point (1 for histograms)
	level    Level
	affected float64 // fraction of plan cost influenced
	cost     float64 // collection cost estimate
	desc     string
}

// Insert runs the algorithm over an optimized plan, mutating it in
// place. It returns the collectors added (free cardinality collectors
// included).
func Insert(res *optimizer.Result, cfg Config) ([]Inserted, error) {
	if cfg.Mu <= 0 {
		cfg.Mu = 0.05
	}
	points := spinePoints(res.Root)
	if len(points) == 0 {
		return nil, nil
	}
	totalCost := res.Root.Est().Cost
	budget := cfg.Mu * totalCost

	cands := enumerate(res, points, totalCost, cfg)
	// Order by decreasing effectiveness: higher inaccuracy potential
	// first, larger affected fraction breaking ties (§2.5).
	sortCandidates(cands)

	chosen := make(map[int][]candidate) // point -> accepted stats
	spent := 0.0
	accepted := 0
	for rank, c := range cands {
		if spent+c.cost > budget {
			continue
		}
		spent += c.cost
		accepted++
		chosen[c.point] = append(chosen[c.point], c)
		if cfg.Trace.Enabled() {
			cfg.Trace.Emit("scia", "statistic accepted",
				"rank", rank+1,
				"stat", c.desc,
				"point", points[c.point].desc,
				"level", c.level.String(),
				"affected_fraction", c.affected,
				"cost", c.cost,
			)
		}
	}
	if cfg.Trace.Enabled() {
		cfg.Trace.Emit("scia", "insertion budget summary",
			"mu", cfg.Mu,
			"budget", budget,
			"spent", spent,
			"candidates", len(cands),
			"accepted", accepted,
			"points", len(points),
		)
	}

	var out []Inserted
	nextID := 1
	for pi, pt := range points {
		spec := plan.CollectorSpec{HistFamily: cfg.HistFamily, Seed: cfg.Seed + int64(pi)}
		var stats []string
		for _, c := range chosen[pi] {
			if c.isUnique {
				spec.UniqueCols = append(spec.UniqueCols, c.cols)
			} else {
				spec.HistCols = append(spec.HistCols, c.cols[0])
			}
			stats = append(stats, c.desc)
		}
		col := &plan.Collector{Input: pt.node, Spec: spec, ID: nextID}
		nextID++
		e := col.Est()
		in := pt.node.Est()
		e.Rows, e.Bytes = in.Rows, in.Bytes
		if !spec.Empty() {
			e.SelfCost = in.Rows * cfg.Weights.StatCPU
		}
		e.Cost = in.Cost + e.SelfCost
		if pt.parent == nil {
			res.Root = col
		} else if err := replaceChild(pt.parent, pt.node, col); err != nil {
			return nil, err
		}
		out = append(out, Inserted{Collector: col, Point: pt.desc, Stats: stats})
	}
	return out, nil
}

// point is one pipeline boundary where a collector can observe an
// intermediate result.
type point struct {
	node   plan.Node // the node whose output is observed
	parent plan.Node // consumer to re-point at the collector
	desc   string
}

// spinePoints returns the observable intermediate results in execution
// order: the leftmost leaf pipeline's output and each join's output,
// excluding the final top-of-plan result (statistics there arrive too
// late to act on).
func spinePoints(root plan.Node) []point {
	// Walk down the left spine to the bottom, recording join nodes.
	var tops []plan.Node
	cur := root
	for {
		switch n := cur.(type) {
		case *plan.Project, *plan.Agg, *plan.Sort, *plan.Limit:
			tops = append(tops, n)
			cur = n.Children()[0]
		case *plan.Exchange:
			// Normally SCIA runs before parallelization, but a caller
			// handing in an already-parallel plan still gets collectors:
			// exchanges are transparent, so a collector inserted below a
			// gather simply runs once per worker and merges at the gather.
			tops = append(tops, n)
			cur = n.Input
		default:
			goto spine
		}
	}
spine:
	var pts []point
	var walk func(n plan.Node, parent plan.Node)
	walk = func(n plan.Node, parent plan.Node) {
		switch x := n.(type) {
		case *plan.HashJoin:
			walk(x.Build, x)
			// The join's own output, observed by its consumer.
			pts = append(pts, point{node: x, parent: parent, desc: "output of " + x.Label() + " [" + x.Describe() + "]"})
		case *plan.IndexJoin:
			walk(x.Outer, x)
			pts = append(pts, point{node: x, parent: parent, desc: "output of " + x.Label() + " [" + x.Describe() + "]"})
		case *plan.Filter:
			walk(x.Input, x)
		case *plan.Exchange:
			walk(x.Input, x)
		case *plan.Scan:
			pts = append(pts, point{node: x, parent: parent, desc: "output of scan " + x.Binding})
		}
	}
	walk(cur, parentOf(tops, cur, root))
	// The point list currently ends with the last join's output (or the
	// single scan), whose consumer is the first top operator — those
	// statistics finish only when the query is nearly done, except the
	// aggregate input, which an agg's memory grant can still use.
	// Re-point parents: pts recorded parents inside the spine; for the
	// topmost point the parent is the deepest top operator.
	if len(pts) > 0 && pts[len(pts)-1].parent == nil && len(tops) > 0 {
		pts[len(pts)-1].parent = tops[len(tops)-1]
	}
	return pts
}

func parentOf(tops []plan.Node, spineTop, root plan.Node) plan.Node {
	if len(tops) > 0 {
		return tops[len(tops)-1]
	}
	if spineTop == root {
		return nil
	}
	return nil
}

// replaceChild re-points parent's link from old to new.
func replaceChild(parent, old, new plan.Node) error {
	switch p := parent.(type) {
	case *plan.HashJoin:
		if p.Build == old {
			p.Build = new
			return nil
		}
		if p.Probe == old {
			p.Probe = new
			return nil
		}
	case *plan.IndexJoin:
		if p.Outer == old {
			p.Outer = new
			return nil
		}
	case *plan.Filter:
		if p.Input == old {
			p.Input = new
			return nil
		}
	case *plan.Collector:
		if p.Input == old {
			p.Input = new
			return nil
		}
	case *plan.Agg:
		if p.Input == old {
			p.Input = new
			return nil
		}
	case *plan.Project:
		if p.Input == old {
			p.Input = new
			return nil
		}
	case *plan.Sort:
		if p.Input == old {
			p.Input = new
			return nil
		}
	case *plan.Limit:
		if p.Input == old {
			p.Input = new
			return nil
		}
	case *plan.Exchange:
		if p.Input == old {
			p.Input = new
			return nil
		}
	}
	return fmt.Errorf("scia: %T is not the parent of %T", parent, old)
}

// enumerate lists the potentially useful statistics at every point: a
// histogram on a column used by a join or selection predicate applied
// later in the plan, and a distinct count on column sets grouped on
// later (§2.5).
func enumerate(res *optimizer.Result, points []point, totalCost float64, cfg Config) []candidate {
	var cands []candidate
	levels := newLevelTracer(res)
	seenHist := map[string]bool{}
	seenUnique := map[string]bool{}

	// A statistic is actionable only if its collection point sits below
	// a later hash-join build — the dispatcher's only decision points.
	// Statistics that complete when the query is already in its final
	// pipeline cannot trigger re-optimization ("it is too late to do
	// anything about it", §2.5), which is also why simple queries must
	// carry no priced collectors at all.
	actionable := make([]bool, len(points))
	for pi := range points {
		for pj := pi + 1; pj < len(points); pj++ {
			if _, ok := points[pj].node.(*plan.HashJoin); ok {
				actionable[pi] = true
				break
			}
		}
	}

	for pi, pt := range points {
		if !actionable[pi] {
			continue
		}
		schema := pt.node.Schema()
		rows := pt.node.Est().Rows
		ptLevel := levels.pointLevel(pt.node)

		// Histogram candidates: columns consumed by joins above.
		for ci, col := range schema.Columns {
			consumer, ok := laterJoinUse(res.Root, pt.node, col.Table, col.Name)
			if !ok {
				continue
			}
			key := col.Table + "." + col.Name
			if seenHist[key] {
				continue
			}
			seenHist[key] = true
			lv := maxLevel(levels.baseColLevel(col.Table, col.Name), ptLevel)
			aff := affectedFraction(consumer, totalCost)
			cands = append(cands, candidate{
				point:    pi,
				cols:     []int{ci},
				level:    lv,
				affected: aff,
				cost:     rows * cfg.Weights.StatCPU,
				desc:     fmt.Sprintf("histogram %s (%s, affects %.0f%%)", key, lv, aff*100),
			})
		}

		// Distinct-count candidates: the GROUP BY column set, if every
		// grouped column is present at this point.
		if agg := topAgg(res.Root); agg != nil && len(agg.GroupCols) > 0 {
			inSchema := agg.Input.Schema()
			var cols []int
			okAll := true
			names := ""
			for _, gc := range agg.GroupCols {
				c := inSchema.Columns[gc]
				ci, err := schema.Resolve(c.Table, c.Name)
				if err != nil {
					okAll = false
					break
				}
				cols = append(cols, ci)
				if names != "" {
					names += ","
				}
				names += c.Table + "." + c.Name
			}
			if okAll && !seenUnique[names] {
				seenUnique[names] = true
				// The number of unique values at any intermediate
				// point has high inaccuracy potential (§2.5).
				aff := affectedFraction(agg, totalCost)
				cands = append(cands, candidate{
					point:    pi,
					isUnique: true,
					cols:     cols,
					level:    High,
					affected: aff,
					cost:     rows * cfg.Weights.StatCPU,
					desc:     fmt.Sprintf("unique %s (high, affects %.0f%%)", names, aff*100),
				})
			}
		}
	}
	return cands
}

// laterJoinUse reports whether the named column is a join key or filter
// input of an operator above `below` in the plan, returning that
// consumer.
func laterJoinUse(root plan.Node, below plan.Node, table, name string) (plan.Node, bool) {
	// Collect the path from root down to `below`; consumers are the
	// nodes strictly above it.
	path := pathTo(root, below)
	if path == nil {
		return nil, false
	}
	for i := len(path) - 1; i >= 0; i-- { // deepest consumer first
		n := path[i]
		if usesColumn(n, table, name) {
			return n, true
		}
	}
	return nil, false
}

func pathTo(root, target plan.Node) []plan.Node {
	if root == target {
		return []plan.Node{}
	}
	for _, c := range root.Children() {
		if sub := pathTo(c, target); sub != nil {
			return append([]plan.Node{root}, sub...)
		}
	}
	return nil
}

// usesColumn reports whether the operator's own predicates or keys read
// the named column.
func usesColumn(n plan.Node, table, name string) bool {
	switch x := n.(type) {
	case *plan.HashJoin:
		bs, ps := x.Build.Schema(), x.Probe.Schema()
		for _, k := range x.BuildKeys {
			c := bs.Columns[k]
			if equalCol(c.Table, c.Name, table, name) {
				return true
			}
		}
		for _, k := range x.ProbeKeys {
			c := ps.Columns[k]
			if equalCol(c.Table, c.Name, table, name) {
				return true
			}
		}
	case *plan.IndexJoin:
		c := x.Outer.Schema().Columns[x.OuterKey]
		if equalCol(c.Table, c.Name, table, name) {
			return true
		}
		ic := x.InnerOut.Columns[x.InnerCol]
		if equalCol(ic.Table, ic.Name, table, name) {
			return true
		}
	case *plan.Filter:
		for _, p := range x.PredSQL {
			if predUsesColumn(p, table, name) {
				return true
			}
		}
	}
	return false
}

func equalCol(t1, n1, t2, n2 string) bool { return t1 == t2 && n1 == n2 }

func predUsesColumn(p sql.Predicate, table, name string) bool {
	var exprs []sql.Expr
	switch x := p.(type) {
	case *sql.ComparePred:
		exprs = []sql.Expr{x.Left, x.Right}
	case *sql.BetweenPred:
		exprs = []sql.Expr{x.Expr, x.Lo, x.Hi}
	case *sql.InPred:
		exprs = append([]sql.Expr{x.Expr}, x.List...)
	case *sql.LikePred:
		exprs = []sql.Expr{x.Expr}
	}
	for _, e := range exprs {
		if exprUsesColumn(e, table, name) {
			return true
		}
	}
	return false
}

func exprUsesColumn(e sql.Expr, table, name string) bool {
	switch x := e.(type) {
	case *sql.ColumnRef:
		return (x.Table == table || x.Table == "") && x.Name == name
	case *sql.BinaryExpr:
		return exprUsesColumn(x.Left, table, name) || exprUsesColumn(x.Right, table, name)
	case *sql.AggExpr:
		return x.Arg != nil && exprUsesColumn(x.Arg, table, name)
	}
	return false
}

// topAgg finds the aggregate among the top operators, if any.
func topAgg(root plan.Node) *plan.Agg {
	cur := root
	for cur != nil {
		if a, ok := cur.(*plan.Agg); ok {
			return a
		}
		ch := cur.Children()
		if len(ch) == 0 {
			return nil
		}
		switch cur.(type) {
		case *plan.Project, *plan.Sort, *plan.Limit:
			cur = ch[0]
		default:
			return nil
		}
	}
	return nil
}

// affectedFraction is the share of total plan cost in the consumer and
// everything above it — the not-yet-executed portion the statistic can
// influence.
func affectedFraction(consumer plan.Node, totalCost float64) float64 {
	if totalCost <= 0 {
		return 0
	}
	e := consumer.Est()
	frac := (totalCost - e.Cost + e.SelfCost) / totalCost
	return math.Max(0, math.Min(1, frac))
}

// sortCandidates orders by effectiveness: level desc, affected desc,
// cheaper first as the final tiebreak.
func sortCandidates(cs []candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && moreEffective(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func moreEffective(a, b candidate) bool {
	if a.level != b.level {
		return a.level > b.level
	}
	if a.affected != b.affected {
		return a.affected > b.affected
	}
	return a.cost < b.cost
}
