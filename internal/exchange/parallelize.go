package exchange

import (
	"repro/internal/plan"
)

// Parallelize rewrites a physical plan for degree-N intra-query
// parallelism by inserting exchange operators at segment boundaries:
//
//   - each leaf pipeline (scan + filters + collectors) gets a gather on
//     top, executed by N page-partitioned scan workers;
//   - each hash-join step gets a gather above its wrapper nodes, with
//     hash-partition exchanges on both join inputs (build tuples routed
//     by build-key hash, probe tuples by probe-key hash);
//   - an aggregation becomes gather{agg{round-robin{input}}} — partial
//     aggregation per worker, final merge at the gather;
//   - index-join steps and sorts stay serial (the index and the ordered
//     merge are single streams), with the segments below them still
//     parallel.
//
// Gathers land exactly at the re-optimizer's checkpoint boundaries, so
// collector reports, Eq. 1/2 decisions, memory re-allocation, and plan
// switches operate on serial streams between parallel regions.
//
// The pass runs after SCIA collector insertion and after memory
// allocation (exchanges are estimate-transparent, so grants attach to
// the same nodes either way), mutates the plan in place, and is
// idempotent: a plan that already contains exchange nodes is returned
// unchanged. Degree < 2 is a no-op.
func Parallelize(root plan.Node, deg int) plan.Node {
	if root == nil || deg < 2 {
		return root
	}
	par := false
	plan.Walk(root, func(n plan.Node) {
		if _, ok := n.(*plan.Exchange); ok {
			par = true
		}
	})
	if par {
		return root
	}
	return topsPass(root, deg)
}

// topsPass handles the serial tail above the join spine: projections,
// sorts, and limits pass through; an aggregation is rewritten into the
// partial/final cluster; anything else starts the spine.
func topsPass(n plan.Node, deg int) plan.Node {
	switch x := n.(type) {
	case *plan.Project:
		x.Input = topsPass(x.Input, deg)
		return x
	case *plan.Sort:
		x.Input = topsPass(x.Input, deg)
		return x
	case *plan.Limit:
		x.Input = topsPass(x.Input, deg)
		return x
	case *plan.Agg:
		x.Input = &plan.Exchange{
			Input:  topsPass(x.Input, deg),
			Degree: deg,
			Mode:   plan.ExRoundRobin,
		}
		return &plan.Exchange{Input: x, Degree: deg, Mode: plan.ExGather}
	default:
		nn, ok := spinePass(n, deg)
		if ok {
			return &plan.Exchange{Input: nn, Degree: deg, Mode: plan.ExGather}
		}
		return nn
	}
}

// spinePass rewrites the join spine bottom-up. The boolean reports
// whether the returned segment is parallel — i.e. whether the caller
// must put a gather above it before feeding a serial consumer.
func spinePass(n plan.Node, deg int) (plan.Node, bool) {
	switch x := n.(type) {
	case *plan.Collector:
		in, ok := spinePass(x.Input, deg)
		x.Input = in
		return x, ok
	case *plan.Filter:
		in, ok := spinePass(x.Input, deg)
		x.Input = in
		return x, ok
	case *plan.HashJoin:
		b, ok := spinePass(x.Build, deg)
		if ok {
			// The segment below ends here: gather it back to a serial
			// stream (the checkpoint boundary), then re-partition by the
			// join's build keys.
			b = &plan.Exchange{Input: b, Degree: deg, Mode: plan.ExGather}
		}
		x.Build = &plan.Exchange{
			Input:  b,
			Degree: deg,
			Mode:   plan.ExHash,
			Keys:   append([]int(nil), x.BuildKeys...),
		}
		x.Probe = &plan.Exchange{
			Input:  x.Probe,
			Degree: deg,
			Mode:   plan.ExHash,
			Keys:   append([]int(nil), x.ProbeKeys...),
		}
		return x, true
	case *plan.IndexJoin:
		o, ok := spinePass(x.Outer, deg)
		if ok {
			o = &plan.Exchange{Input: o, Degree: deg, Mode: plan.ExGather}
		}
		x.Outer = o
		return x, false // the index probe itself stays serial
	case *plan.Scan:
		return x, true // leaf segment: page-partitioned parallel scan
	default:
		return x, false
	}
}
