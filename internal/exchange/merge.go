package exchange

import (
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/types"
)

// OrderedMerge completes the exchange family: a gather that preserves
// sort order. Given partition streams that are each already sorted on
// the same keys, it produces their sorted union with a streaming N-way
// merge — no re-sort, no buffering beyond one head tuple per input. It
// is the merge half of a merging gather; the planner's spine pass keeps
// sorts serial today, so it is exercised directly (tests, future
// order-preserving repartitioning) rather than placed by Parallelize.
type OrderedMerge struct {
	keys   []plan.SortKey
	srcs   []exec.Operator
	heads  []types.Tuple
	opened bool
	closed bool
}

// NewOrderedMerge merges the given pre-sorted streams on keys.
func NewOrderedMerge(keys []plan.SortKey, srcs ...exec.Operator) *OrderedMerge {
	return &OrderedMerge{keys: keys, srcs: srcs}
}

// Schema implements Operator.
func (m *OrderedMerge) Schema() *types.Schema {
	if len(m.srcs) == 0 {
		return nil
	}
	return m.srcs[0].Schema()
}

func (m *OrderedMerge) less(a, b types.Tuple) bool {
	for _, k := range m.keys {
		c := a[k.Col].Compare(b[k.Col])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// Open implements Operator: open every input and prime its head tuple.
func (m *OrderedMerge) Open() error {
	if m.opened {
		return nil
	}
	m.opened = true
	m.heads = make([]types.Tuple, len(m.srcs))
	for i, s := range m.srcs {
		if err := s.Open(); err != nil {
			return err
		}
		t, err := s.Next()
		if err != nil {
			return err
		}
		m.heads[i] = t
	}
	return nil
}

// Next implements Operator: emit the smallest head and refill it. With
// stable input order (lower partition index wins ties) the merge is
// deterministic.
func (m *OrderedMerge) Next() (types.Tuple, error) {
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 || m.less(h, m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	t := m.heads[best]
	nt, err := m.srcs[best].Next()
	if err != nil {
		return nil, err
	}
	m.heads[best] = nt
	return t, nil
}

// Close implements Operator.
func (m *OrderedMerge) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	var err error
	for _, s := range m.srcs {
		if e := s.Close(); err == nil {
			err = e
		}
	}
	return err
}
