package exchange

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/types"
)

// chanCap is the buffering on exchange queues. Enough to decouple
// producer and consumer bursts; small enough that a stalled consumer
// exerts backpressure within a few pages' worth of tuples.
const chanCap = 64

// region is one parallel segment's runtime: a cancellation scope derived
// from the query context, the goroutines running inside it, and the
// first error any of them hit. Queue sends and receives select against
// the region's Done channel, so failing (or closing) the region unblocks
// every goroutine in it — no leaks, no stuck channels.
type region struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error
}

func newRegion(parent context.Context) *region {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	return &region{ctx: ctx, cancel: cancel}
}

// fail records the region's first error and cancels it. Later calls
// keep the original error; fail(nil) is a no-op.
func (r *region) fail(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

// peekErr returns the recorded error, if any.
func (r *region) peekErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// cause explains why the region stopped: its first recorded error, else
// the (possibly parent-inherited) context error, else nil.
func (r *region) cause() error {
	if err := r.peekErr(); err != nil {
		return err
	}
	return r.ctx.Err()
}

// spawn runs fn on the query pool under the region: the goroutine is
// counted in the region's WaitGroup (and any extra groups), panics are
// recovered into fail, and a non-nil return value fails the region.
// Error recording happens before any group is released, so a waiter
// observing a group completion also observes the error.
func (r *region) spawn(c *exec.Ctx, label string, fn func() error, groups ...*sync.WaitGroup) {
	r.wg.Add(1)
	for _, g := range groups {
		g.Add(1)
	}
	c.Go("exchange:"+label, func() {
		defer func() {
			if p := recover(); p != nil {
				r.fail(panicErr(label, p))
			}
			for _, g := range groups {
				g.Done()
			}
			r.wg.Done()
		}()
		if err := fn(); err != nil {
			r.fail(err)
		}
	})
}

// send delivers t to q unless the region is done; it reports whether the
// send happened.
func send(r *region, q chan types.Tuple, t types.Tuple) bool {
	select {
	case q <- t:
		return true
	case <-r.ctx.Done():
		return false
	}
}

// source adapts an exchange queue to the Operator interface so worker
// pipelines can be assembled from the ordinary operator constructors. A
// closed queue is end of stream; a cancelled region is an error.
type source struct {
	sch *types.Schema
	q   chan types.Tuple
	r   *region
}

func newSource(r *region, q chan types.Tuple, sch *types.Schema) *source {
	return &source{sch: sch, q: q, r: r}
}

func (s *source) Open() error { return nil }

func (s *source) Next() (types.Tuple, error) {
	select {
	case t, ok := <-s.q:
		if !ok {
			return nil, nil
		}
		return t, nil
	case <-s.r.ctx.Done():
		return nil, s.r.cause()
	}
}

func (s *source) Close() error { return nil }

func (s *source) Schema() *types.Schema { return s.sch }

// closeAll closes a set of partition queues (producers are done).
func closeAll(qs []chan types.Tuple) {
	for _, q := range qs {
		close(q)
	}
}

// makeQueues allocates n buffered partition queues.
func makeQueues(n int) []chan types.Tuple {
	qs := make([]chan types.Tuple, n)
	for i := range qs {
		qs[i] = make(chan types.Tuple, chanCap)
	}
	return qs
}

// workerCtx derives a worker's execution context from the consumer's:
// its own tick counter and tributary cost meter (local accounting that
// still feeds the query totals), the region's cancellation scope, its
// partition coordinates, and its share of memory grants. Stats sinks are
// left nil — the caller wires StateSink to the gather's merge buffer.
func workerCtx(parent *exec.Ctx, r *region, part, of int, share float64) *exec.Ctx {
	return &exec.Ctx{
		Pool:       parent.Pool,
		Meter:      parent.Meter.Tributary(),
		Params:     parent.Params,
		Context:    r.ctx,
		CheckEvery: parent.CheckEvery,
		Part:       part,
		PartOf:     of,
		GrantShare: share,
		Snap:       parent.Snap,
		Spawn:      parent.Spawn,
		Wall:       parent.Wall,
		Trace:      parent.Trace,
		Analyze:    parent.Analyze,
		Prog:       parent.Prog,
	}
}

// hashTuple combines key columns into one hash — the same FNV scheme the
// hash join uses, so routing by hashTuple%N sends equal keys on build
// and probe sides to the same worker.
func hashTuple(t types.Tuple, keys []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		h = h*1099511628211 ^ t[k].Hash()
	}
	return h
}

func panicErr(label string, p any) error {
	return fmt.Errorf("exchange: %s panicked: %v", label, p)
}

// meterCosts sums the given tributary meters and finds the maximum — the
// inputs to the wall-clock savings model (sum - max is the overlapped
// work).
func meterCosts(meters []*storage.CostMeter) (sum, max float64) {
	for _, m := range meters {
		c := m.Snapshot().Cost()
		sum += c
		if c > max {
			max = c
		}
	}
	return sum, max
}
