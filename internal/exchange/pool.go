// Package exchange implements intra-query parallelism: Volcano-style
// exchange operators (gather, hash partition, round robin) that split a
// plan segment across N worker goroutines and merge the partition
// streams — and their statistics-collector states — back into one serial
// stream at the segment boundary.
//
// Gather points coincide with the re-optimizer's checkpoint boundaries,
// so everything the paper's machinery consumes — collector reports for
// the Eq. 1/2 checkpoint inequalities, SCIA-placed collectors, memory
// grants, plan switches — works unchanged on parallel plans: between
// segments the tuple stream is serial, and each gather emits exactly the
// merged report a serial collector would have produced.
package exchange

import (
	"fmt"
	"sync"
)

// Pool is a per-query worker pool: every goroutine the query's exchange
// operators spawn is registered here, so the dispatcher can join them
// all at end of query and surface worker panics as query errors instead
// of process crashes. It deliberately is not a semaphore — exchange
// regions are producer/consumer chains, and capping live goroutines
// below a region's population would deadlock it.
type Pool struct {
	mu      sync.Mutex
	wg      sync.WaitGroup
	err     error
	spawned int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Go runs fn on a tracked goroutine. A panic in fn is recovered and
// recorded as the pool's error (first wins) rather than crashing the
// process; the region-level recovery inside fn normally fires first, so
// this is the backstop for bugs outside any region.
func (p *Pool) Go(label string, fn func()) {
	p.mu.Lock()
	p.spawned++
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.mu.Lock()
				if p.err == nil {
					p.err = fmt.Errorf("exchange: worker %s panicked: %v", label, r)
				}
				p.mu.Unlock()
			}
			p.wg.Done()
		}()
		fn()
	}()
}

// Spawned returns how many goroutines the pool has ever started.
func (p *Pool) Spawned() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawned
}

// Wait joins every spawned goroutine and returns the first recorded
// panic error, if any. The dispatcher calls it after the plan's
// operators are closed, so regions have already been cancelled and the
// join is prompt.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
