package exchange

import (
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// init installs the exchange runtime into the executor. exec cannot
// import this package (exchange assembles worker pipelines out of exec's
// operators), so the executor dispatches plan.Exchange nodes through a
// hook variable instead.
func init() {
	exec.ExchangeBuilder = buildExchange
}

// buildExchange instantiates the operator for an exchange plan node.
// left, when non-nil, is the already-built serial input stream (the
// dispatcher's step-wise build path); nil means build the whole subtree
// from the plan.
func buildExchange(x *plan.Exchange, left exec.Operator, ctx *exec.Ctx) (exec.Operator, error) {
	switch x.Mode {
	case plan.ExHash, plan.ExRoundRobin:
		// Partitioning annotations are consumed by the enclosing gather's
		// builder (which routes tuples itself); reached directly they are
		// transparent.
		if left != nil {
			return left, nil
		}
		return exec.Build(x.Input, ctx)
	}
	// Gather: pick the runtime for the segment under it.
	if agg, ok := x.Input.(*plan.Agg); ok {
		if _, rr := agg.Input.(*plan.Exchange); rr {
			return newParallelAgg(x, agg, left, ctx), nil
		}
	}
	if wrappers, join := splitSegment(x.Input); join != nil {
		return newParallelJoin(x, join, wrappers, left, ctx), nil
	}
	if left != nil {
		// A gather over an already-built serial stream has nothing to
		// parallelize; pass it through.
		return left, nil
	}
	return newGather(x, ctx), nil
}

// splitSegment peels the wrapper nodes (collectors, residual filters)
// off a gather's subtree down to the hash join that anchors the step.
// Wrappers are returned bottom-up — the order they are applied over the
// join operator. A segment not anchored by a hash join returns nil.
func splitSegment(n plan.Node) ([]plan.Node, *plan.HashJoin) {
	var wrappers []plan.Node
	for {
		switch w := n.(type) {
		case *plan.Collector:
			wrappers = append(wrappers, w)
			n = w.Input
		case *plan.Filter:
			wrappers = append(wrappers, w)
			n = w.Input
		case *plan.HashJoin:
			for i, j := 0, len(wrappers)-1; i < j; i, j = i+1, j-1 {
				wrappers[i], wrappers[j] = wrappers[j], wrappers[i]
			}
			return wrappers, w
		default:
			return nil, nil
		}
	}
}

// stateSlots is the per-worker collector-state buffer of one region.
// Each worker appends to its own slot from its own goroutine; the
// consumer reads all slots at finalize, after the region's goroutines
// have been joined (WaitGroup edges make this race-free).
type stateSlots [][]*exec.CollectorState

func newStateSlots(n int) stateSlots { return make(stateSlots, n) }

// sink returns the StateSink for worker slot w.
func (s stateSlots) sink(w int) func(*exec.CollectorState) {
	return func(st *exec.CollectorState) { s[w] = append(s[w], st) }
}

// finalizeRegion completes a gather: merge per-worker collector states
// into single reports (worker-index order, so merged histograms and
// samples are deterministic), deliver them to the consumer's stats sink,
// account the region's wall-clock savings, and roll worker costs and
// memory into EXPLAIN ANALYZE. It runs on the consumer's goroutine after
// every region goroutine has exited.
func finalizeRegion(x *plan.Exchange, ctx *exec.Ctx, meters []*storage.CostMeter, states stateSlots, memOps []exec.Operator) error {
	if err := faultinject.Hit("exchange.gather"); err != nil {
		return err
	}
	merged := map[int]*exec.CollectorState{}
	var order []int
	for _, ws := range states {
		for _, st := range ws {
			if m, ok := merged[st.ID]; ok {
				m.Merge(st)
			} else {
				merged[st.ID] = st
				order = append(order, st.ID)
			}
		}
	}
	for _, id := range order {
		st := merged[id]
		if ctx.StateSink != nil {
			// Nested region: forward the still-mergeable state upward.
			ctx.StateSink(st)
			continue
		}
		o := st.Observed()
		if ctx.Trace.Enabled() {
			ctx.Trace.Emit("collector", "merged parallel collector report",
				"collector_id", id, "partitions", len(states),
				"actual_rows", o.Rows, "bytes", o.Bytes)
		}
		if ctx.StatsSink != nil {
			ctx.StatsSink(o)
		}
	}
	sum, max := meterCosts(meters)
	ctx.Wall.AddSavings(sum - max)
	if ctx.Analyze.Enabled() {
		acc := ctx.Analyze.Op(x)
		for i, m := range meters {
			mem := 0.0
			if i < len(memOps) && memOps[i] != nil {
				if mr, ok := memOps[i].(interface{ MemUsed() float64 }); ok {
					mem = mr.MemUsed()
				}
			}
			acc.RecordWorker(m.Snapshot().Cost(), mem)
		}
	}
	return nil
}

// degree returns the usable worker count for an exchange node.
func degree(x *plan.Exchange) int {
	if x.Degree < 1 {
		return 1
	}
	return x.Degree
}

// runWorker drives one worker pipeline to completion, forwarding its
// output into the gather queue. It owns the operator's lifecycle on
// every path.
func runWorker(r *region, op exec.Operator, out chan types.Tuple) error {
	if err := faultinject.Hit("exchange.worker"); err != nil {
		op.Close()
		return err
	}
	if err := op.Open(); err != nil {
		op.Close()
		return err
	}
	for {
		t, err := op.Next()
		if err != nil {
			op.Close()
			return err
		}
		if t == nil {
			break
		}
		if !send(r, out, t) {
			op.Close()
			return r.cause()
		}
	}
	return op.Close()
}
