package exchange

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// sliceOp is a test source over a fixed tuple slice.
type sliceOp struct {
	sch  *types.Schema
	rows []types.Tuple
	i    int
}

func (s *sliceOp) Schema() *types.Schema { return s.sch }
func (s *sliceOp) Open() error           { s.i = 0; return nil }
func (s *sliceOp) Close() error          { return nil }
func (s *sliceOp) Next() (types.Tuple, error) {
	if s.i >= len(s.rows) {
		return nil, nil
	}
	t := s.rows[s.i]
	s.i++
	return t, nil
}

func intRow(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.NewInt(v)
	}
	return t
}

func TestOrderedMergePreservesSort(t *testing.T) {
	sch := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	a := &sliceOp{sch: sch, rows: []types.Tuple{intRow(1), intRow(4), intRow(9)}}
	b := &sliceOp{sch: sch, rows: []types.Tuple{intRow(2), intRow(4), intRow(7)}}
	c := &sliceOp{sch: sch, rows: []types.Tuple{}}
	m := NewOrderedMerge([]plan.SortKey{{Col: 0}}, a, b, c)
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		tp, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tp == nil {
			break
		}
		got = append(got, tp[0].Int())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 4, 4, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
}

func TestOrderedMergeDescending(t *testing.T) {
	sch := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	a := &sliceOp{sch: sch, rows: []types.Tuple{intRow(9), intRow(3)}}
	b := &sliceOp{sch: sch, rows: []types.Tuple{intRow(7), intRow(1)}}
	m := NewOrderedMerge([]plan.SortKey{{Col: 0, Desc: true}}, a, b)
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		tp, _ := m.Next()
		if tp == nil {
			break
		}
		got = append(got, tp[0].Int())
	}
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Fatalf("descending merge out of order: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("merged %d tuples, want 4", len(got))
	}
}

// TestPoolContainsPanics: a panicking worker must surface as an error
// from Wait, never crash the process.
func TestPoolContainsPanics(t *testing.T) {
	p := NewPool()
	p.Go("boom", func() { panic("worker exploded") })
	p.Go("fine", func() {})
	err := p.Wait()
	if err == nil || !strings.Contains(err.Error(), "worker exploded") {
		t.Fatalf("Wait() = %v, want the contained panic", err)
	}
	if p.Spawned() != 2 {
		t.Errorf("Spawned() = %d, want 2", p.Spawned())
	}
}

// TestRegionFirstErrorWinsAndCancels: the first failure cancels the
// region; queue operations unblock instead of leaking goroutines.
func TestRegionFirstErrorWins(t *testing.T) {
	r := newRegion(context.Background())
	first := errors.New("first")
	r.fail(first)
	r.fail(errors.New("second"))
	if r.cause() != first {
		t.Errorf("cause() = %v, want the first error", r.cause())
	}
	select {
	case <-r.ctx.Done():
	default:
		t.Error("region not cancelled after fail")
	}
	// A send into a full queue must unblock via cancellation.
	q := make(chan types.Tuple) // unbuffered, nobody reading
	if ok := send(r, q, intRow(1)); ok {
		t.Error("send succeeded into a dead region")
	}
}

// TestRegionSpawnPropagatesWorkerError: an error returned by a spawned
// worker is recorded before the region's WaitGroup releases.
func TestRegionSpawnPropagatesWorkerError(t *testing.T) {
	r := newRegion(context.Background())
	c := &exec.Ctx{}
	boom := errors.New("route failed")
	r.spawn(c, "t", func() error { return boom })
	r.wg.Wait()
	if r.cause() != boom {
		t.Errorf("cause() = %v, want %v", r.cause(), boom)
	}
}

// TestWorkerCtxSplitsIdentity: worker contexts carry partition identity
// and the shared cancellation context.
func TestWorkerCtxSplits(t *testing.T) {
	r := newRegion(context.Background())
	parent := &exec.Ctx{CheckEvery: 16, Meter: storage.NewCostMeter(storage.DefaultCostWeights())}
	wc := workerCtx(parent, r, 2, 4, 0.25)
	if wc.Part != 2 || wc.PartOf != 4 {
		t.Errorf("partition identity = %d/%d, want 2/4", wc.Part, wc.PartOf)
	}
	if wc.GrantShare != 0.25 {
		t.Errorf("grant share = %g", wc.GrantShare)
	}
	if wc.Context != r.ctx {
		t.Error("worker context not bound to the region")
	}
	if wc.Meter == nil {
		t.Error("worker has no tributary meter")
	}
}
