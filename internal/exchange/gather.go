package exchange

import (
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// gather executes a leaf plan segment (scan plus wrappers — no blocking
// join anchor) once per worker, each worker's sequential scan reading
// only its page partition, and merges the partition streams into one
// serial output. Collector states from worker pipelines are buffered and
// merged into a single report when the last worker finishes, so the
// consumer-side dispatcher sees exactly one Observed per collector — the
// same contract as serial execution.
type gather struct {
	x   *plan.Exchange
	ctx *exec.Ctx

	reg     *region
	out     chan types.Tuple
	workers []exec.Operator
	meters  []*storage.CostMeter
	states  stateSlots

	opened    bool
	closed    bool
	finalized bool
}

func newGather(x *plan.Exchange, ctx *exec.Ctx) *gather {
	return &gather{x: x, ctx: ctx}
}

// Schema implements Operator.
func (g *gather) Schema() *types.Schema { return g.x.Schema() }

// Open builds one copy of the segment pipeline per worker — each against
// its own partition context — and starts them. Leaf segments have no
// blocking phase, so Open returns as soon as the workers are launched.
func (g *gather) Open() error {
	if g.opened {
		return nil
	}
	g.opened = true
	n := degree(g.x)
	g.reg = newRegion(g.ctx.Context)
	g.out = make(chan types.Tuple, chanCap)
	g.workers = make([]exec.Operator, n)
	g.meters = make([]*storage.CostMeter, n)
	g.states = newStateSlots(n)
	for w := 0; w < n; w++ {
		wc := workerCtx(g.ctx, g.reg, w, n, 0)
		wc.StateSink = g.states.sink(w)
		g.meters[w] = wc.Meter
		op, err := exec.Build(g.x.Input, wc)
		if err != nil {
			g.reg.cancel()
			return err
		}
		g.workers[w] = op
	}
	var emit sync.WaitGroup
	for w := 0; w < n; w++ {
		op := g.workers[w]
		g.reg.spawn(g.ctx, fmt.Sprintf("scan-worker-%d", w), func() error {
			return runWorker(g.reg, op, g.out)
		}, &emit)
	}
	g.reg.spawn(g.ctx, "scan-gather-close", func() error {
		emit.Wait()
		close(g.out)
		return nil
	})
	return nil
}

// Next implements Operator: it merges worker outputs (arrival order) and
// finalizes the region — merged stats report, wall savings — when the
// last worker closes the stream.
func (g *gather) Next() (types.Tuple, error) {
	if g.finalized || !g.opened {
		return nil, nil
	}
	t, ok := <-g.out
	if ok {
		return t, nil
	}
	// Channel closed: every worker has exited and recorded any error.
	if err := g.reg.peekErr(); err != nil {
		return nil, err
	}
	g.finalized = true
	if err := finalizeRegion(g.x, g.ctx, g.meters, g.states, nil); err != nil {
		return nil, err
	}
	return nil, nil
}

// Close implements Operator: cancel the region, join its goroutines, and
// close worker pipelines that never ran (runWorker closes the ones that
// did; Close is idempotent, so the backstop sweep is safe).
func (g *gather) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	if g.reg != nil {
		g.reg.cancel()
		g.reg.wg.Wait()
	}
	for _, op := range g.workers {
		if op != nil {
			op.Close()
		}
	}
	return nil
}
