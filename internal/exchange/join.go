package exchange

import (
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/memmgr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// parallelJoin executes one hash-join step — the join plus its wrapper
// nodes (statistics collectors, residual filters) — across N workers.
//
// Build phase (Open): a router goroutine drains the serial build input
// (the previous segment's gathered stream) and deals tuples to workers
// by hash of the build keys; each worker runs a real hash join over its
// partition under 1/N of the node's memory grant. Open returns once
// every worker's build is complete, which puts the dispatcher at the
// paper's decision point: build done, probe not started.
//
// Probe phase (first Next): N probe producers each scan their page
// partition of the probe side and route tuples by hash of the probe
// keys to the matching join worker; join outputs (already filtered and
// observed by the per-worker wrapper pipeline) are gathered into one
// serial stream. When the stream drains, per-worker collector states
// merge into single reports and the region's wall savings are recorded.
type parallelJoin struct {
	x        *plan.Exchange
	join     *plan.HashJoin
	wrappers []plan.Node // bottom-up, applied over each worker's join
	left     exec.Operator
	ctx      *exec.Ctx

	reg     *region
	out     chan types.Tuple
	buildQ  []chan types.Tuple
	probeQ  []chan types.Tuple
	tops    []exec.Operator // per-worker wrapped pipelines
	joins   []exec.Operator // per-worker join ops (memory reporting)
	meters  []*storage.CostMeter
	states  stateSlots
	probeOp []exec.Operator
	emit    sync.WaitGroup
	probeGo chan struct{}

	opened       bool
	probeStarted bool
	finalized    bool
	closed       bool
}

func newParallelJoin(x *plan.Exchange, join *plan.HashJoin, wrappers []plan.Node, left exec.Operator, ctx *exec.Ctx) *parallelJoin {
	return &parallelJoin{x: x, join: join, wrappers: wrappers, left: left, ctx: ctx}
}

// Schema implements Operator.
func (j *parallelJoin) Schema() *types.Schema { return j.x.Schema() }

// Open runs the parallel build phase to completion.
func (j *parallelJoin) Open() error {
	if j.opened {
		return nil
	}
	j.opened = true
	n := degree(j.x)
	j.reg = newRegion(j.ctx.Context)
	j.out = make(chan types.Tuple, chanCap)
	j.buildQ = makeQueues(n)
	j.probeQ = makeQueues(n)
	j.probeGo = make(chan struct{})
	j.tops = make([]exec.Operator, n)
	j.joins = make([]exec.Operator, n)
	j.meters = make([]*storage.CostMeter, 2*n)
	j.states = newStateSlots(2 * n)
	j.probeOp = make([]exec.Operator, n)

	if j.left == nil {
		// Whole-tree build path (no dispatcher step-wise assembly): the
		// serial build input is the segment below, built against the
		// consumer context.
		var err error
		j.left, err = exec.Build(plan.StripPartition(j.join.Build), j.ctx)
		if err != nil {
			j.reg.cancel()
			return err
		}
	}

	share := memmgr.SplitGrant(n)
	for w := 0; w < n; w++ {
		wc := workerCtx(j.ctx, j.reg, w, n, share)
		wc.StateSink = j.states.sink(w)
		j.meters[w] = wc.Meter
		var op exec.Operator = exec.NewHashJoin(j.join,
			newSource(j.reg, j.buildQ[w], j.join.Build.Schema()),
			newSource(j.reg, j.probeQ[w], j.join.Probe.Schema()), wc)
		op = exec.Instrument(op, j.join, wc)
		j.joins[w] = op
		for _, wr := range j.wrappers {
			var err error
			op, err = exec.BuildStep(wr, op, wc)
			if err != nil {
				j.reg.cancel()
				return err
			}
		}
		j.tops[w] = op
	}

	// buildWG gates Open's return: the router plus every worker's build.
	var buildWG sync.WaitGroup
	buildWG.Add(n)
	j.reg.spawn(j.ctx, "build-route", j.routeBuild(n), &buildWG)
	for w := 0; w < n; w++ {
		j.reg.spawn(j.ctx, fmt.Sprintf("join-worker-%d", w), j.joinWorker(w, &buildWG), &j.emit)
	}
	buildDone := make(chan struct{})
	j.reg.spawn(j.ctx, "build-barrier", func() error {
		buildWG.Wait()
		close(buildDone)
		return nil
	})
	<-buildDone
	if err := j.reg.peekErr(); err != nil {
		return err
	}
	return nil
}

// routeBuild drains the serial build input, dealing tuples to workers by
// build-key hash. It owns the input operator's lifecycle.
func (j *parallelJoin) routeBuild(n int) func() error {
	return func() error {
		defer closeAll(j.buildQ)
		if err := j.left.Open(); err != nil {
			j.left.Close()
			return err
		}
		for {
			if err := faultinject.Hit("exchange.route"); err != nil {
				j.left.Close()
				return err
			}
			t, err := j.left.Next()
			if err != nil {
				j.left.Close()
				return err
			}
			if t == nil {
				break
			}
			w := int(hashTuple(t, j.join.BuildKeys) % uint64(n))
			if !send(j.reg, j.buildQ[w], t) {
				j.left.Close()
				return j.reg.cause()
			}
		}
		return j.left.Close()
	}
}

// joinWorker runs one worker's pipeline: open (drains its build
// partition), signal build completion, wait for the probe gate, then
// stream join outputs into the gather queue. Errors during build are
// recorded before buildWG is released so Open observes them.
func (j *parallelJoin) joinWorker(w int, buildWG *sync.WaitGroup) func() error {
	op := j.tops[w]
	return func() error {
		if err := faultinject.Hit("exchange.worker"); err != nil {
			j.reg.fail(err)
			buildWG.Done()
			op.Close()
			return nil
		}
		if err := op.Open(); err != nil {
			j.reg.fail(err)
			buildWG.Done()
			op.Close()
			return nil
		}
		buildWG.Done()
		select {
		case <-j.probeGo:
		case <-j.reg.ctx.Done():
			op.Close()
			return j.reg.cause()
		}
		for {
			t, err := op.Next()
			if err != nil {
				op.Close()
				return err
			}
			if t == nil {
				break
			}
			if !send(j.reg, j.out, t) {
				op.Close()
				return j.reg.cause()
			}
		}
		return op.Close()
	}
}

// startProbe launches the probe-side producers and opens the gate the
// join workers are waiting behind. Until this runs — i.e. until the
// consumer's first Next — the step sits at the paper's mid-query
// decision point with the probe untouched.
func (j *parallelJoin) startProbe() error {
	j.probeStarted = true
	n := len(j.tops)
	probePlan := plan.StripPartition(j.join.Probe)
	for p := 0; p < n; p++ {
		pc := workerCtx(j.ctx, j.reg, p, n, 0)
		pc.StateSink = j.states.sink(n + p)
		j.meters[n+p] = pc.Meter
		op, err := exec.Build(probePlan, pc)
		if err != nil {
			j.reg.fail(err)
			return err
		}
		j.probeOp[p] = op
	}
	var probeWG sync.WaitGroup
	for p := 0; p < n; p++ {
		j.reg.spawn(j.ctx, fmt.Sprintf("probe-route-%d", p), j.probeWorker(j.probeOp[p], n), &probeWG)
	}
	j.reg.spawn(j.ctx, "probe-close", func() error {
		probeWG.Wait()
		closeAll(j.probeQ)
		return nil
	})
	j.reg.spawn(j.ctx, "join-gather-close", func() error {
		j.emit.Wait()
		close(j.out)
		return nil
	})
	close(j.probeGo)
	return nil
}

// probeWorker scans one page partition of the probe side and routes its
// tuples to join workers by probe-key hash.
func (j *parallelJoin) probeWorker(op exec.Operator, n int) func() error {
	return func() error {
		if err := faultinject.Hit("exchange.worker"); err != nil {
			op.Close()
			return err
		}
		if err := op.Open(); err != nil {
			op.Close()
			return err
		}
		for {
			t, err := op.Next()
			if err != nil {
				op.Close()
				return err
			}
			if t == nil {
				break
			}
			if err := faultinject.Hit("exchange.route"); err != nil {
				op.Close()
				return err
			}
			w := int(hashTuple(t, j.join.ProbeKeys) % uint64(n))
			if !send(j.reg, j.probeQ[w], t) {
				op.Close()
				return j.reg.cause()
			}
		}
		return op.Close()
	}
}

// Next implements Operator: the first call starts the probe phase; the
// stream then merges worker outputs until every worker is done, at which
// point the region finalizes (merged collector reports, wall savings).
func (j *parallelJoin) Next() (types.Tuple, error) {
	if j.finalized || !j.opened {
		return nil, nil
	}
	if !j.probeStarted {
		if err := j.startProbe(); err != nil {
			return nil, err
		}
	}
	t, ok := <-j.out
	if ok {
		return t, nil
	}
	if err := j.reg.peekErr(); err != nil {
		return nil, err
	}
	j.finalized = true
	if err := finalizeRegion(j.x, j.ctx, j.meters, j.states, j.joins); err != nil {
		return nil, err
	}
	return nil, nil
}

// Close implements Operator: cancel the region, join every goroutine,
// then sweep operator Closes (idempotent) so pipelines that never ran —
// e.g. a plan switch abandoned the step before its probe — still drop
// their spill partitions.
func (j *parallelJoin) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	if j.reg != nil {
		j.reg.cancel()
		j.reg.wg.Wait()
	}
	for _, op := range j.tops {
		if op != nil {
			op.Close()
		}
	}
	for _, op := range j.probeOp {
		if op != nil {
			op.Close()
		}
	}
	if j.left != nil {
		j.left.Close()
	}
	return nil
}
