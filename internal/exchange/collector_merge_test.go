package exchange

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/types"
)

// genTuples produces a deterministic skewed stream: col 0 is an int key
// with the given distinct count (zipf-ish via squaring), col 1 a float.
func genTuples(n, distinct int, seed int64) []types.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]types.Tuple, n)
	for i := range out {
		u := rng.Float64()
		k := int64(u * u * float64(distinct)) // skew toward low keys
		out[i] = types.Tuple{
			types.NewInt(k),
			types.NewFloat(float64(k) * 1.5),
		}
	}
	return out
}

func collectorNode() *plan.Collector {
	return &plan.Collector{
		ID: 7,
		Spec: plan.CollectorSpec{
			HistCols:   []int{0},
			UniqueCols: [][]int{{0}},
			Seed:       42,
		},
	}
}

// TestMergedCollectorsMatchSingleStream is the mergeability property the
// whole parallel design rests on (DESIGN.md §11): per-partition states
// merged in worker order must report what a single collector over the
// union would have. Counters, byte totals, and extrema are exact;
// distinct estimates share the FM bitmap construction so they agree
// exactly with the single stream and land within the sketch's
// documented ~13% standard error of the truth (we allow 30%); histograms
// are rebuilt from the merged reservoir, so we check the reservoir
// invariants (seen count exact, sample values drawn from the input).
func TestMergedCollectorsMatchSingleStream(t *testing.T) {
	for _, parts := range []int{2, 4, 8} {
		for _, distinct := range []int{100, 5000} { // exact mode and FM mode
			t.Run(fmt.Sprintf("parts=%d_distinct=%d", parts, distinct), func(t *testing.T) {
				tuples := genTuples(20000, distinct, int64(parts*31+distinct))
				node := collectorNode()

				single := exec.NewCollectorState(node, 0)
				for _, tp := range tuples {
					single.Observe(tp)
				}

				states := make([]*exec.CollectorState, parts)
				for w := range states {
					states[w] = exec.NewCollectorState(node, w)
				}
				for _, tp := range tuples {
					// Hash-partition on the key column, as ExHash routing does.
					states[hashTuple(tp, []int{0})%uint64(parts)].Observe(tp)
				}
				merged := states[0]
				for _, s := range states[1:] {
					merged.Merge(s)
				}

				mo, so := merged.Observed(), single.Observed()
				if mo.Rows != so.Rows || mo.Bytes != so.Bytes {
					t.Errorf("rows/bytes: merged %g/%g, single %g/%g", mo.Rows, mo.Bytes, so.Rows, so.Bytes)
				}
				for col, want := range so.Mins {
					if got := mo.Mins[col]; !got.Equal(want) {
						t.Errorf("min[%d] = %v, want %v", col, got, want)
					}
				}
				for col, want := range so.Maxs {
					if got := mo.Maxs[col]; !got.Equal(want) {
						t.Errorf("max[%d] = %v, want %v", col, got, want)
					}
				}

				truth := trueDistinct(tuples)
				for key, want := range so.Uniques {
					got := mo.Uniques[key]
					if got != want {
						t.Errorf("distinct[%s]: merged %g != single %g (same hashes must build the same sketch)", key, got, want)
					}
					if rel := math.Abs(got-truth) / truth; rel > 0.30 {
						t.Errorf("distinct[%s] = %g, truth %g: relative error %.2f exceeds the documented bound", key, got, truth, rel)
					}
				}

				r := mergedReservoir(t, merged, 0)
				if r.Seen() != int64(len(tuples)) {
					t.Errorf("merged reservoir saw %d values, want %d", r.Seen(), len(tuples))
				}
				for _, v := range r.Sample() {
					if v.Int() < 0 || v.Int() >= int64(distinct) {
						t.Errorf("sampled value %v outside the input domain", v)
					}
				}
				if h := mo.Hists[0]; h == nil {
					t.Error("no histogram built from the merged reservoir")
				}
			})
		}
	}
}

// trueDistinct counts col-0 distinct values exactly.
func trueDistinct(tuples []types.Tuple) float64 {
	seen := map[int64]bool{}
	for _, tp := range tuples {
		seen[tp[0].Int()] = true
	}
	return float64(len(seen))
}

func mergedReservoir(t *testing.T, s *exec.CollectorState, col int) interface {
	Seen() int64
	Sample() []types.Value
} {
	t.Helper()
	r, ok := s.Res[col]
	if !ok {
		t.Fatalf("no reservoir for column %d", col)
	}
	return r
}

// TestMergeOrderIndependentCounts: merging is associative on the exact
// quantities regardless of partition order.
func TestMergeOrderIndependentCounts(t *testing.T) {
	tuples := genTuples(5000, 200, 9)
	node := collectorNode()
	build := func(order []int) *plan.Observed {
		states := make([]*exec.CollectorState, 4)
		for w := range states {
			states[w] = exec.NewCollectorState(node, w)
		}
		for i, tp := range tuples {
			states[i%4].Observe(tp)
		}
		m := exec.NewCollectorState(node, 0)
		for _, w := range order {
			m.Merge(states[w])
		}
		return m.Observed()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	if a.Rows != b.Rows || a.Bytes != b.Bytes {
		t.Errorf("merge order changed counts: %g/%g vs %g/%g", a.Rows, a.Bytes, b.Rows, b.Bytes)
	}
	for col := range a.Mins {
		if !a.Mins[col].Equal(b.Mins[col]) || !a.Maxs[col].Equal(b.Maxs[col]) {
			t.Errorf("merge order changed extrema on column %d", col)
		}
	}
}
