package exchange

import (
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/memmgr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// parallelAgg executes an aggregation as a partial/final split: a router
// deals the serial input round-robin to N workers, each running a
// partial aggregation (emitting encoded per-group states) under its
// share of the memory grant; a final aggregation on the consumer's
// goroutine merges the state streams into the real results. The plan
// shape is Exchange(gather){Agg{Exchange(round-robin){input}}}.
//
// Workers get 1/(2N) of the grant each and the final merge gets the
// remaining half: partials see 1/N of the tuples but the final pass can
// hold every distinct group.
type parallelAgg struct {
	x   *plan.Exchange
	agg *plan.Agg
	// left is the serial input stream; nil until Open when built from
	// the plan below the round-robin exchange.
	left exec.Operator
	ctx  *exec.Ctx

	reg      *region
	inQ      []chan types.Tuple
	stateQ   chan types.Tuple
	final    exec.Operator
	partials []exec.Operator
	meters   []*storage.CostMeter
	states   stateSlots

	opened    bool
	closed    bool
	finalized bool
}

func newParallelAgg(x *plan.Exchange, agg *plan.Agg, left exec.Operator, ctx *exec.Ctx) *parallelAgg {
	return &parallelAgg{x: x, agg: agg, left: left, ctx: ctx}
}

// Schema implements Operator.
func (a *parallelAgg) Schema() *types.Schema { return a.agg.Schema() }

// Open runs the whole parallel aggregation: routing, partial workers,
// and the blocking final merge. Aggregation is a full barrier in the
// serial engine too (Agg.Open drains its input), so by the time Open
// returns the region is complete and its stats are finalized.
func (a *parallelAgg) Open() error {
	if a.opened {
		return nil
	}
	a.opened = true
	n := degree(a.x)
	a.reg = newRegion(a.ctx.Context)
	a.inQ = makeQueues(n)
	a.stateQ = make(chan types.Tuple, chanCap)
	a.partials = make([]exec.Operator, n)
	a.meters = make([]*storage.CostMeter, n)
	a.states = newStateSlots(n)

	rr, _ := a.agg.Input.(*plan.Exchange)
	if a.left == nil {
		if rr == nil {
			a.reg.cancel()
			return fmt.Errorf("exchange: parallel agg without round-robin input")
		}
		var err error
		a.left, err = exec.Build(rr.Input, a.ctx)
		if err != nil {
			a.reg.cancel()
			return err
		}
	}
	inSchema := a.left.Schema()

	share := memmgr.SplitGrant(2 * n)
	for w := 0; w < n; w++ {
		wc := workerCtx(a.ctx, a.reg, w, n, share)
		wc.StateSink = a.states.sink(w)
		a.meters[w] = wc.Meter
		// Partials are not instrumented: their outputs are encoded group
		// states, not result rows, and would inflate the agg node's
		// actual row count. Worker costs reach ANALYZE via the region's
		// per-worker rollup instead.
		a.partials[w] = exec.NewPartialAgg(a.agg, newSource(a.reg, a.inQ[w], inSchema), wc)
	}

	// The final merge runs on the consumer's goroutine and context (its
	// work is the serial tail of the query) with the reserved half of
	// the grant. The Ctx copy must happen before any worker is spawned:
	// the route goroutine drains the serial input against a.ctx and
	// ticks its non-atomic cancellation counter.
	fc := *a.ctx
	fc.GrantShare = 0.5
	fc.StateSink = nil
	a.final = exec.Instrument(exec.NewFinalAgg(a.agg, newSource(a.reg, a.stateQ, inSchema), &fc), a.agg, &fc)

	var emit sync.WaitGroup
	for w := 0; w < n; w++ {
		op := a.partials[w]
		a.reg.spawn(a.ctx, fmt.Sprintf("agg-worker-%d", w), func() error {
			return runWorker(a.reg, op, a.stateQ)
		}, &emit)
	}
	a.reg.spawn(a.ctx, "agg-state-close", func() error {
		emit.Wait()
		close(a.stateQ)
		return nil
	})
	a.reg.spawn(a.ctx, "agg-route", a.route(n))

	if err := a.final.Open(); err != nil {
		return err
	}
	if err := a.reg.peekErr(); err != nil {
		return err
	}
	a.finalized = true
	return finalizeRegion(a.x, a.ctx, a.meters, a.states, a.partials)
}

// route deals input tuples to partial workers in rotation.
func (a *parallelAgg) route(n int) func() error {
	return func() error {
		defer closeAll(a.inQ)
		if err := a.left.Open(); err != nil {
			a.left.Close()
			return err
		}
		i := 0
		for {
			if err := faultinject.Hit("exchange.route"); err != nil {
				a.left.Close()
				return err
			}
			t, err := a.left.Next()
			if err != nil {
				a.left.Close()
				return err
			}
			if t == nil {
				break
			}
			if !send(a.reg, a.inQ[i%n], t) {
				a.left.Close()
				return a.reg.cause()
			}
			i++
		}
		return a.left.Close()
	}
}

// Next implements Operator: results stream from the final merge.
func (a *parallelAgg) Next() (types.Tuple, error) {
	if !a.opened || a.final == nil {
		return nil, nil
	}
	return a.final.Next()
}

// Close implements Operator.
func (a *parallelAgg) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	if a.reg != nil {
		a.reg.cancel()
		a.reg.wg.Wait()
	}
	var err error
	if a.final != nil {
		err = a.final.Close()
	}
	for _, op := range a.partials {
		if op != nil {
			op.Close()
		}
	}
	if a.left != nil {
		a.left.Close()
	}
	return err
}
