package midquery

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (§3.2). Each benchmark regenerates the corresponding figure's series
// and prints the same rows the paper plots. Measurements are
// deterministic simulated cost units, so b.N iterations all produce the
// same numbers; the interesting outputs are the printed tables and the
// reported "cost" metrics, not ns/op.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/tpcd"
)

var printOnce sync.Map

// printTable prints a table once per benchmark name across -benchtime
// iterations.
func printTable(name, table string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", table)
	}
}

// reportImprovement records the class-average improvement of re-optimized
// over normal execution as benchmark metrics.
func reportImprovement(b *testing.B, rows []bench.Row, pick func(bench.Row) float64) {
	byClass := map[tpcd.Class][]float64{}
	for _, r := range rows {
		v := pick(r)
		if v <= 0 || r.Off <= 0 {
			continue
		}
		byClass[r.Class] = append(byClass[r.Class], (1-v/r.Off)*100)
	}
	for class, vals := range byClass {
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		b.ReportMetric(sum/float64(len(vals)), string(class)+"_improve_%")
	}
}

// BenchmarkFigure10 — Normal vs Re-Optimized execution for Q1, Q6
// (simple), Q3, Q10 (medium), Q5, Q7, Q8 (complex). Paper shape: simple
// unchanged (or slightly worse), medium up to ~5% better, complex
// 10-30% better.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure10(bench.Default())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig10", bench.FormatRows("Figure 10: Normal vs Re-Optimized (stale-statistics regime)", rows))
		reportImprovement(b, rows, func(r bench.Row) float64 { return r.Full })
	}
}

// BenchmarkFigure10Fresh — the same comparison with fresh catalog
// statistics: with accurate estimates re-optimization should (and does)
// fire rarely, validating §2.4's gating conditions.
func BenchmarkFigure10Fresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.Default()
		cfg.StaleFrac = 0
		rows, err := bench.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig10fresh", bench.FormatRows("Figure 10 (control): fresh statistics", rows))
		reportImprovement(b, rows, func(r bench.Row) float64 { return r.Full })
	}
}

// BenchmarkFigure11 — isolating dynamic memory re-allocation from query
// plan modification on the medium and complex queries.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure11(bench.Default())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig11", bench.FormatRows("Figure 11: memory-only vs plan-only", rows))
		reportImprovement(b, rows, func(r bench.Row) float64 { return r.Mem })
	}
}

// BenchmarkFigure12Z03 and BenchmarkFigure12Z06 — the skew experiments:
// TPC-D with generalized Zipfian skew on all non-key attributes.
func BenchmarkFigure12Z03(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure12(bench.Default(), 0.3)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig12a", bench.FormatRows("Figure 12: Zipf z=0.3", rows))
		reportImprovement(b, rows, func(r bench.Row) float64 { return r.Full })
	}
}

func BenchmarkFigure12Z06(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure12(bench.Default(), 0.6)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig12b", bench.FormatRows("Figure 12: Zipf z=0.6", rows))
		reportImprovement(b, rows, func(r bench.Row) float64 { return r.Full })
	}
}

// BenchmarkMuGuarantee — "we set μ to 0.05 ensuring that none of the
// queries ever performed 5% worse than normal": worst-case overhead of
// enabling re-optimization on simple queries that cannot benefit.
func BenchmarkMuGuarantee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.MuGuarantee(bench.Default(), []float64{0.01, 0.05, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		table := "Mu guarantee: overhead of full mode on non-benefiting queries\n"
		for _, r := range rows {
			table += fmt.Sprintf("  mu=%.2f %-4s overhead=%+.2f%%\n", r.Mu, r.Query, r.Overhead*100)
			if r.Overhead > worst {
				worst = r.Overhead
			}
		}
		printTable("mu", table)
		b.ReportMetric(worst*100, "worst_overhead_%")
		if worst > 0.05 {
			b.Errorf("mu guarantee violated: %.1f%% worst overhead", worst*100)
		}
	}
}

// BenchmarkSensitivity — θ₂ sweep over the complex queries (the
// analysis the paper defers to Kabra's thesis [12]).
func BenchmarkSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Sensitivity(bench.Default(), []float64{0.05, 0.2, 0.5, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		table := "Theta2 sensitivity, plan-only mode (medium and complex queries)\n"
		for _, r := range rows {
			table += fmt.Sprintf("  theta2=%.2f %-4s full=%8.0f (normal %8.0f) switches=%d\n",
				r.Theta2, r.Query, r.Full, r.Off, r.Switches)
		}
		printTable("sens", table)
	}
}

// BenchmarkAblations — design-choice ablations: Figure-6 switching vs
// the rejected restart option, μ-budgeted collectors vs collect-all,
// hash-only plans.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablations(bench.Default())
		if err != nil {
			b.Fatal(err)
		}
		table := "Ablations (complex queries)\n"
		for _, r := range rows {
			table += fmt.Sprintf("  %-4s %-12s %8.0f\n", r.Query, r.Variant, r.Cost)
		}
		printTable("abl", table)
	}
}

// BenchmarkHistogramFamilies — how base-estimate quality (catalog
// histogram family) changes what re-optimization finds.
func BenchmarkHistogramFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.HistFamilies(bench.Default())
		if err != nil {
			b.Fatal(err)
		}
		table := "Catalog histogram families (complex queries)\n"
		for _, r := range rows {
			table += fmt.Sprintf("  %-10s %-4s normal=%8.0f full=%8.0f switches=%d\n",
				r.Family, r.Query, r.Off, r.Full, r.Switches)
		}
		printTable("hist", table)
	}
}

// BenchmarkHybrid — the paper's §4 future-work proposal: a parametric
// plan chooses among pre-enumerated candidates from the actual host
// variable bindings, with Dynamic Re-Optimization armed for the cases
// the parametric plan did not anticipate.
func BenchmarkHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Hybrid(bench.Default())
		if err != nil {
			b.Fatal(err)
		}
		table := "Parametric/dynamic hybrid (host-variable Q3 variant, selective bindings)\n"
		for _, r := range rows {
			table += fmt.Sprintf("  %-12s %8.0f (switches=%d)\n", r.Variant, r.Cost, r.Switches)
		}
		printTable("hybrid", table)
	}
}
