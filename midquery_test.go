package midquery

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

func openTPCD(t *testing.T, sf, zipf float64) *DB {
	t.Helper()
	db := Open(Options{BufferPoolPages: 2048})
	if err := db.LoadTPCD(TPCDConfig{SF: sf, Zipf: zipf, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenCreateInsertQuery(t *testing.T) {
	db := Open(Options{})
	err := db.CreateTable("emp",
		Column{Name: "id", Kind: KindInt, Key: true},
		Column{Name: "dept", Kind: KindString},
		Column{Name: "salary", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Insert("emp", i, fmt.Sprintf("dept%d", i%4), float64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Analyze("emp", MaxDiff); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("select dept, count(*) as n, avg(salary) as pay from emp group by dept order by dept", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][1].Int() != 25 {
		t.Errorf("count = %v", res.Rows[0][1])
	}
	if res.Cost <= 0 {
		t.Error("no cost recorded")
	}
	if len(res.Columns) != 3 || res.Columns[1] != "n" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestInsertConversions(t *testing.T) {
	db := Open(Options{})
	db.CreateTable("x",
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindString},
		Column{Name: "c", Kind: KindFloat},
		Column{Name: "d", Kind: KindInt},
	)
	if err := db.Insert("x", int64(1), "s", 2.5, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("x", struct{}{}, "s", 1.0, 1); err == nil {
		t.Error("bad type accepted")
	}
	if err := db.Insert("nope", 1); err == nil {
		t.Error("insert into missing table accepted")
	}
	res, _ := db.Exec("select a, b, c, d from x", ExecOptions{})
	if !res.Rows[0][3].IsNull() {
		t.Error("nil not converted to NULL")
	}
}

func TestAllTPCDQueriesRunInAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-D run")
	}
	db := openTPCD(t, 0.002, 0)
	for _, q := range TPCDQueries() {
		var base []Tuple
		for _, mode := range []Mode{ReoptOff, ReoptFull} {
			res, err := db.Exec(q.SQL, ExecOptions{Mode: mode})
			if err != nil {
				t.Fatalf("%s mode %v: %v", q.Name, mode, err)
			}
			if mode == ReoptOff {
				base = res.Rows
				continue
			}
			compareRows(t, q.Name, res.Rows, base)
		}
	}
}

func compareRows(t *testing.T, label string, got, want []Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows vs %d", label, len(got), len(want))
	}
	key := func(tp Tuple) string {
		parts := make([]string, len(tp))
		for i, v := range tp {
			parts[i] = v.String()
		}
		return strings.Join(parts, "|")
	}
	a := make([]string, len(got))
	b := make([]string, len(want))
	for i := range got {
		a[i] = key(got[i])
		b[i] = key(want[i])
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s row %d: %s vs %s", label, i, a[i], b[i])
		}
	}
}

func TestExplain(t *testing.T) {
	db := openTPCD(t, 0.001, 0)
	text, err := db.Explain(Q("Q5").SQL, ExecOptions{Mode: ReoptFull})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hash-join", "statistics-collector", "aggregate", "seq-scan"} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain missing %q:\n%s", want, text)
		}
	}
	if _, err := db.Explain("select nothing from nowhere", ExecOptions{}); err == nil {
		t.Error("bad SQL explained")
	}
}

func TestHostVariables(t *testing.T) {
	db := openTPCD(t, 0.001, 0)
	res, err := db.Exec(
		"select count(*) as n from orders where o_totalprice < :cap",
		ExecOptions{Params: map[string]Value{"cap": NewFloat(2000)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := db.Exec("select count(*) as n from orders", ExecOptions{})
	if res.Rows[0][0].Int() >= all.Rows[0][0].Int() {
		t.Error("host-var filter did not filter")
	}
	if _, err := db.Exec("select count(*) as n from orders where o_totalprice < :cap", ExecOptions{}); err == nil {
		t.Error("unbound host variable accepted")
	}
}

func TestResetCost(t *testing.T) {
	db := openTPCD(t, 0.001, 0)
	if db.Cost() <= 0 {
		t.Error("load charged nothing")
	}
	db.ResetCost()
	if db.Cost() != 0 {
		t.Error("ResetCost did not zero the meter")
	}
}
