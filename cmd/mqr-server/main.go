// Command mqr-server serves the mid-query re-optimization engine to
// concurrent clients over HTTP: it loads the TPC-D-style dataset once,
// then accepts SQL sessions that share the catalog, buffer pool, plan
// cache, and one brokered operator-memory pool (the multi-query setting
// that motivates the paper's §2.3 re-allocation).
//
// Usage:
//
//	mqr-server [flags]
//
// Flags:
//
//	-addr     listen address (default :7744)
//	-sf       TPC-D scale factor (default 0.01)
//	-stale    fraction of data present at ANALYZE time (default 0.5)
//	-zipf     Zipfian skew for non-key attributes (default 0)
//	-pool     buffer pool pages (default 1024)
//	-mempool  shared operator-memory pool in bytes (default 16 MiB)
//	-mem      per-query optimize-time budget in bytes (default 4 MiB)
//	-cache    plan cache capacity in plans; -1 disables (default 256)
//	-query-timeout  default per-query deadline (e.g. 1m; 0 = none);
//	          individual requests override it with "timeout_ms"
//	-parallel default intra-query degree of parallelism (0 = serial);
//	          individual requests override it with "parallel"
//	-seed     data generator seed
//	-v        verbose (debug-level) logging
//
// Running queries can be aborted: POST /cancel {"query": "s3_q17"}
// (tags come from query responses or GET /status "running").
//
// Logs are structured (log/slog text format) on stderr; every query
// request is logged with its session, engine tag, duration, and plan
// switch count. Prometheus metrics are at GET /metrics.
//
// Try it:
//
//	mqr-server &
//	mqr -connect localhost:7744 @Q3
//	curl -s localhost:7744/metrics | grep reopt_
package main

import (
	"flag"
	"log/slog"
	"os"

	midquery "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7744", "listen address")
		sf      = flag.Float64("sf", 0.01, "TPC-D scale factor")
		stale   = flag.Float64("stale", 0.5, "fraction of data loaded when ANALYZE ran (0 = fresh)")
		zipf    = flag.Float64("zipf", 0, "Zipfian skew z for non-key attributes")
		pool    = flag.Int("pool", 1024, "buffer pool pages (8 KiB each)")
		mempool = flag.Float64("mempool", 16<<20, "shared operator-memory pool in bytes")
		mem     = flag.Float64("mem", 4<<20, "per-query optimize-time memory budget in bytes")
		cache   = flag.Int("cache", 256, "plan cache capacity in plans (-1 disables)")
		qto     = flag.Duration("query-timeout", 0, "default per-query deadline (0 = none)")
		par     = flag.Int("parallel", 0, "default intra-query degree of parallelism (0 = serial)")
		seed    = flag.Int64("seed", 1, "data generator seed")
		verbose = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	log.Info("loading TPC-D", "sf", *sf, "stale", *stale, "zipf", *zipf)
	db := midquery.Open(midquery.Options{BufferPoolPages: *pool})
	if err := db.LoadTPCD(midquery.TPCDConfig{
		SF: *sf, Zipf: *zipf, Seed: *seed, StaleFrac: *stale,
	}); err != nil {
		log.Error("load failed", "err", err)
		os.Exit(1)
	}
	log.Info("loaded", "cost_units", db.Cost())

	m := db.NewSessionManager(midquery.SessionConfig{
		MemPoolBytes:  *mempool,
		MemBudget:     *mem,
		PlanCacheSize: *cache,
	})
	srv := server.New(m)
	srv.SetLogger(log)
	srv.SetQueryTimeout(*qto)
	srv.SetParallel(*par)
	log.Info("serving",
		"addr", *addr,
		"mem_pool_bytes", *mempool,
		"mem_budget_bytes", *mem,
		"plan_cache", *cache,
		"query_timeout", *qto,
		"parallel", *par)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Error("server failed", "err", err)
		os.Exit(1)
	}
}
