// Command mqr-server serves the mid-query re-optimization engine to
// concurrent clients over HTTP: it loads the TPC-D-style dataset once,
// then accepts SQL sessions that share the catalog, buffer pool, plan
// cache, and one brokered operator-memory pool (the multi-query setting
// that motivates the paper's §2.3 re-allocation).
//
// Usage:
//
//	mqr-server [flags]
//
// Flags:
//
//	-addr     listen address (default :7744)
//	-sf       TPC-D scale factor (default 0.01)
//	-stale    fraction of data present at ANALYZE time (default 0.5)
//	-zipf     Zipfian skew for non-key attributes (default 0)
//	-pool     buffer pool pages (default 1024)
//	-mempool  shared operator-memory pool in bytes (default 16 MiB)
//	-mem      per-query optimize-time budget in bytes (default 4 MiB)
//	-cache    plan cache capacity in plans; -1 disables (default 256)
//	-seed     data generator seed
//
// Try it:
//
//	mqr-server &
//	mqr -connect localhost:7744 @Q3
package main

import (
	"flag"
	"fmt"
	"os"

	midquery "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7744", "listen address")
		sf      = flag.Float64("sf", 0.01, "TPC-D scale factor")
		stale   = flag.Float64("stale", 0.5, "fraction of data loaded when ANALYZE ran (0 = fresh)")
		zipf    = flag.Float64("zipf", 0, "Zipfian skew z for non-key attributes")
		pool    = flag.Int("pool", 1024, "buffer pool pages (8 KiB each)")
		mempool = flag.Float64("mempool", 16<<20, "shared operator-memory pool in bytes")
		mem     = flag.Float64("mem", 4<<20, "per-query optimize-time memory budget in bytes")
		cache   = flag.Int("cache", 256, "plan cache capacity in plans (-1 disables)")
		seed    = flag.Int64("seed", 1, "data generator seed")
	)
	flag.Parse()

	fmt.Printf("loading TPC-D SF %g (stale=%.2f zipf=%.1f) ...\n", *sf, *stale, *zipf)
	db := midquery.Open(midquery.Options{BufferPoolPages: *pool})
	if err := db.LoadTPCD(midquery.TPCDConfig{
		SF: *sf, Zipf: *zipf, Seed: *seed, StaleFrac: *stale,
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("loaded (%.0f simulated cost units)\n", db.Cost())

	m := db.NewSessionManager(midquery.SessionConfig{
		MemPoolBytes:  *mempool,
		MemBudget:     *mem,
		PlanCacheSize: *cache,
	})
	fmt.Printf("serving on %s (memory pool %.0f MiB, per-query budget %.0f MiB)\n",
		*addr, *mempool/(1<<20), *mem/(1<<20))
	if err := server.New(m).ListenAndServe(*addr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mqr-server:", err)
	os.Exit(1)
}
