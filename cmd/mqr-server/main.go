// Command mqr-server serves the mid-query re-optimization engine to
// concurrent clients over HTTP: it loads the TPC-D-style dataset once,
// then accepts SQL sessions that share the catalog, buffer pool, plan
// cache, and one brokered operator-memory pool (the multi-query setting
// that motivates the paper's §2.3 re-allocation).
//
// Usage:
//
//	mqr-server [flags]
//
// Flags:
//
//	-addr     listen address (default :7744)
//	-sf       TPC-D scale factor (default 0.01)
//	-stale    fraction of data present at ANALYZE time (default 0.5)
//	-zipf     Zipfian skew for non-key attributes (default 0)
//	-pool     buffer pool pages (default 1024)
//	-mempool  shared operator-memory pool in bytes (default 16 MiB)
//	-mem      per-query optimize-time budget in bytes (default 4 MiB)
//	-cache    plan cache capacity in plans; -1 disables (default 256)
//	-query-timeout  default per-query deadline (e.g. 1m; 0 = none);
//	          individual requests override it with "timeout_ms"
//	-parallel default intra-query degree of parallelism (0 = serial);
//	          individual requests override it with "parallel"
//	-tenants  comma-separated tenant service classes, each
//	          name:weight[:priority[:quota_bytes[:max_queued]]] —
//	          e.g. "gold:3:1,batch:1:0:4194304:32". Tenants can also be
//	          (re)configured at runtime via POST /tenants; unknown
//	          tenants get weight 1, priority 0, no quota, unbounded
//	          queue
//	-seed     data generator seed
//	-v        verbose (debug-level) logging
//
// Running queries can be aborted: POST /cancel {"query": "s3_q17"}
// (tags come from query responses or GET /status "running").
//
// Logs are structured (log/slog text format) on stderr; every query
// request is logged with its session, engine tag, duration, and plan
// switch count. Prometheus metrics are at GET /metrics.
//
// Try it:
//
//	mqr-server &
//	mqr -connect localhost:7744 @Q3
//	curl -s localhost:7744/metrics | grep reopt_
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	midquery "repro"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/tenant"
)

func main() {
	var (
		addr    = flag.String("addr", ":7744", "listen address")
		sf      = flag.Float64("sf", 0.01, "TPC-D scale factor")
		stale   = flag.Float64("stale", 0.5, "fraction of data loaded when ANALYZE ran (0 = fresh)")
		zipf    = flag.Float64("zipf", 0, "Zipfian skew z for non-key attributes")
		pool    = flag.Int("pool", 1024, "buffer pool pages (8 KiB each)")
		mempool = flag.Float64("mempool", 16<<20, "shared operator-memory pool in bytes")
		mem     = flag.Float64("mem", 4<<20, "per-query optimize-time memory budget in bytes")
		cache   = flag.Int("cache", 256, "plan cache capacity in plans (-1 disables)")
		qto     = flag.Duration("query-timeout", 0, "default per-query deadline (0 = none)")
		par     = flag.Int("parallel", 0, "default intra-query degree of parallelism (0 = serial)")
		tenants = flag.String("tenants", "", "tenant classes: name:weight[:priority[:quota_bytes[:max_queued]]],...")
		seed    = flag.Int64("seed", 1, "data generator seed")
		verbose = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	log.Info("loading TPC-D", "sf", *sf, "stale", *stale, "zipf", *zipf)
	db := midquery.Open(midquery.Options{BufferPoolPages: *pool})
	if err := db.LoadTPCD(midquery.TPCDConfig{
		SF: *sf, Zipf: *zipf, Seed: *seed, StaleFrac: *stale,
	}); err != nil {
		log.Error("load failed", "err", err)
		os.Exit(1)
	}
	log.Info("loaded", "cost_units", db.Cost())

	m := db.NewSessionManager(midquery.SessionConfig{
		MemPoolBytes:  *mempool,
		MemBudget:     *mem,
		PlanCacheSize: *cache,
	})
	if *tenants != "" {
		if err := configureTenants(m, *tenants); err != nil {
			log.Error("bad -tenants", "err", err)
			os.Exit(2)
		}
	}
	srv := server.New(m)
	srv.SetLogger(log)
	srv.SetQueryTimeout(*qto)
	srv.SetParallel(*par)
	log.Info("serving",
		"addr", *addr,
		"mem_pool_bytes", *mempool,
		"mem_budget_bytes", *mem,
		"plan_cache", *cache,
		"query_timeout", *qto,
		"parallel", *par)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Error("server failed", "err", err)
		os.Exit(1)
	}
}

// configureTenants parses the -tenants flag — comma-separated
// name:weight[:priority[:quota_bytes[:max_queued]]] entries — and
// installs each service class on the manager.
func configureTenants(m *session.Manager, spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 5 {
			return fmt.Errorf("tenant %q: want name:weight[:priority[:quota_bytes[:max_queued]]]", entry)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return fmt.Errorf("tenant %q: empty name", entry)
		}
		var cfg tenant.Config
		var err error
		if cfg.Weight, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return fmt.Errorf("tenant %s: weight: %w", name, err)
		}
		if len(parts) > 2 {
			if cfg.Priority, err = strconv.Atoi(parts[2]); err != nil {
				return fmt.Errorf("tenant %s: priority: %w", name, err)
			}
		}
		if len(parts) > 3 {
			if cfg.QuotaBytes, err = strconv.ParseFloat(parts[3], 64); err != nil {
				return fmt.Errorf("tenant %s: quota_bytes: %w", name, err)
			}
		}
		if len(parts) > 4 {
			if cfg.MaxQueued, err = strconv.Atoi(parts[4]); err != nil {
				return fmt.Errorf("tenant %s: max_queued: %w", name, err)
			}
		}
		m.SetTenantConfig(name, cfg)
	}
	return nil
}
