// Command mqr-fuzz runs the engine's differential fuzzing harness from
// the command line: seed-driven random schemas, data, and chain-join
// queries executed across the full configuration matrix (serial and
// parallel degrees, re-optimization off/on/forced, spill-forcing memory
// budgets, warm plan cache, injected cancellation, and every fault-
// injection site the query reaches), each run checked against a naive
// reference evaluator and the engine's cleanup invariants.
//
// Usage:
//
//	mqr-fuzz -seed 1 -cases 16        # fixed number of cases
//	mqr-fuzz -seed 1 -fuzz-seconds 60 # time-bounded (CI)
//	mqr-fuzz -replay failure.json     # replay one seed file
//	mqr-fuzz -replay testdata/corpus  # replay a corpus directory
//
// Runs are deterministic: the same -seed always generates the same
// cases, configurations, and verdicts. On failure the harness shrinks
// the first failing case to a minimal repro, writes it as a JSON seed
// file (-out), and exits non-zero; `mqr-fuzz -replay <file>` reproduces
// it exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fuzz"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "base seed; case i derives from seed+i")
		cases   = flag.Int("cases", 0, "number of cases to run (0 = 16, or unbounded with -fuzz-seconds)")
		seconds = flag.Int("fuzz-seconds", 0, "stop starting new cases after this many seconds (0 = no time bound)")
		replay  = flag.String("replay", "", "replay a seed file or a directory of seed files instead of fuzzing")
		out     = flag.String("out", "mqr-fuzz-failure.json", "where to write the minimized seed file on failure")
		verbose = flag.Bool("v", false, "print one verdict line per run")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(replayPath(*replay, *verbose))
	}

	opts := fuzz.Options{
		Seed:  *seed,
		Cases: *cases,
		Log: func(format string, args ...any) {
			fmt.Printf("mqr-fuzz: "+format+"\n", args...)
		},
	}
	if *seconds > 0 {
		opts.Deadline = time.Now().Add(time.Duration(*seconds) * time.Second)
	}
	start := time.Now()
	rep := fuzz.Run(opts)
	if *verbose {
		for _, v := range rep.Verdicts {
			fmt.Println(v)
		}
	}
	fmt.Printf("mqr-fuzz: %d cases, %d runs, %d failures in %.1fs (seed %d)\n",
		rep.Cases, rep.Runs, len(rep.Failures), time.Since(start).Seconds(), *seed)

	if len(rep.Failures) == 0 {
		return
	}
	for _, f := range rep.Failures {
		fmt.Fprintf(os.Stderr, "mqr-fuzz: FAIL %s\n", f)
	}
	fmt.Fprintf(os.Stderr, "mqr-fuzz: shrinking first failure...\n")
	min := fuzz.Shrink(rep.Failures[0])
	if err := fuzz.WriteSeed(*out, min); err != nil {
		fmt.Fprintf(os.Stderr, "mqr-fuzz: writing seed file: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mqr-fuzz: minimized to %s\nmqr-fuzz: seed file written to %s (replay with -replay %s)\n",
		min, *out, *out)
	os.Exit(1)
}

// replayPath replays one seed file, or every *.json in a directory, and
// returns the process exit code.
func replayPath(path string, verbose bool) int {
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqr-fuzz: %v\n", err)
		return 2
	}
	paths := []string{path}
	if info.IsDir() {
		paths, err = filepath.Glob(filepath.Join(path, "*.json"))
		if err != nil || len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "mqr-fuzz: no seed files in %s\n", path)
			return 2
		}
	}
	code := 0
	for _, p := range paths {
		f, err := fuzz.ReadSeed(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqr-fuzz: %v\n", err)
			return 2
		}
		if nf := fuzz.Check(f.Case, f.Config); nf != nil {
			fmt.Fprintf(os.Stderr, "mqr-fuzz: %s: FAIL %s\n", p, nf)
			code = 1
		} else if verbose {
			fmt.Printf("mqr-fuzz: %s: ok (%s | %s)\n", p, f.Case, f.Config.Name)
		}
	}
	if code == 0 {
		fmt.Printf("mqr-fuzz: replayed %d seed file(s), all pass\n", len(paths))
	}
	return code
}
