// Command mqr is an interactive front end to the mid-query
// re-optimization engine: it loads the TPC-D-style dataset into an
// in-process database and runs SQL against it, printing annotated plans,
// result rows, simulated costs, and the dispatcher's re-optimization
// decisions.
//
// Usage:
//
//	mqr [flags] [SQL | @Q5]
//
// With no query argument it runs the paper's whole query set. A query of
// the form @Q5 names one of the paper's TPC-D queries.
//
// Flags:
//
//	-sf       scale factor (default 0.01)
//	-mode     off | memory | plan | full | restart (default full)
//	-stale    fraction of data present at ANALYZE time (default 0.5)
//	-zipf     Zipfian skew for non-key attributes (default 0)
//	-pool     buffer pool pages (default 256)
//	-mem      per-query memory budget in bytes (default 2 MiB)
//	-explain  print the annotated plan instead of executing
//	-rows     print at most this many result rows (default 10)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	midquery "repro"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.01, "TPC-D scale factor")
		mode    = flag.String("mode", "full", "re-optimization mode: off|memory|plan|full|restart")
		stale   = flag.Float64("stale", 0.5, "fraction of data loaded when ANALYZE ran (0 = fresh)")
		zipf    = flag.Float64("zipf", 0, "Zipfian skew z for non-key attributes")
		pool    = flag.Int("pool", 256, "buffer pool pages (8 KiB each)")
		mem     = flag.Float64("mem", 2<<20, "per-query memory budget in bytes")
		explain = flag.Bool("explain", false, "print the annotated plan instead of executing")
		maxRows = flag.Int("rows", 10, "result rows to print")
		seed    = flag.Int64("seed", 1, "data generator seed")
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("loading TPC-D SF %g (stale=%.2f zipf=%.1f) ...\n", *sf, *stale, *zipf)
	db := midquery.Open(midquery.Options{BufferPoolPages: *pool})
	if err := db.LoadTPCD(midquery.TPCDConfig{
		SF: *sf, Zipf: *zipf, Seed: *seed, StaleFrac: *stale,
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("loaded (%.0f simulated cost units)\n\n", db.Cost())

	opts := midquery.ExecOptions{Mode: m, MemBudget: *mem}

	var queries []namedQuery
	if flag.NArg() == 0 {
		for _, q := range midquery.TPCDQueries() {
			queries = append(queries, namedQuery{q.Name + " (" + string(q.Class) + ")", q.SQL})
		}
	} else {
		arg := strings.Join(flag.Args(), " ")
		if strings.HasPrefix(arg, "@") {
			q := midquery.Q(strings.TrimPrefix(arg, "@"))
			queries = []namedQuery{{q.Name, q.SQL}}
		} else {
			queries = []namedQuery{{"query", arg}}
		}
	}

	for _, nq := range queries {
		fmt.Printf("=== %s\n", nq.name)
		if *explain {
			text, err := db.Explain(nq.sql, opts)
			if err != nil {
				fatal(err)
			}
			fmt.Println(text)
			continue
		}
		db.DropCaches()
		res, err := db.Exec(nq.sql, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cost=%.0f rows=%d collectors=%d reallocs=%d switches=%d\n",
			res.Cost, len(res.Rows), res.Stats.CollectorsInserted,
			res.Stats.MemReallocs, res.Stats.PlanSwitches)
		for _, d := range res.Stats.Decisions {
			fmt.Println("  " + d)
		}
		if len(res.Columns) > 0 {
			fmt.Println("  " + strings.Join(res.Columns, " | "))
		}
		for i, r := range res.Rows {
			if i >= *maxRows {
				fmt.Printf("  ... %d more rows\n", len(res.Rows)-i)
				break
			}
			fmt.Println("  " + r.String())
		}
		fmt.Println()
	}
}

type namedQuery struct {
	name string
	sql  string
}

func parseMode(s string) (midquery.Mode, error) {
	switch strings.ToLower(s) {
	case "off", "normal":
		return midquery.ReoptOff, nil
	case "memory", "mem":
		return midquery.ReoptMemoryOnly, nil
	case "plan":
		return midquery.ReoptPlanOnly, nil
	case "full":
		return midquery.ReoptFull, nil
	case "restart":
		return midquery.ReoptRestart, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mqr:", err)
	os.Exit(1)
}
