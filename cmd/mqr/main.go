// Command mqr is an interactive front end to the mid-query
// re-optimization engine: it loads the TPC-D-style dataset into an
// in-process database and runs SQL against it, printing annotated plans,
// result rows, simulated costs, and the dispatcher's re-optimization
// decisions.
//
// Usage:
//
//	mqr [flags] [SQL | @Q5]
//
// With no query argument it runs the paper's whole query set. A query of
// the form @Q5 names one of the paper's TPC-D queries. mqr exits
// non-zero if any query fails (remaining queries still run).
//
// Flags:
//
//	-sf       scale factor (default 0.01)
//	-mode     off | memory | plan | full | restart (default full)
//	-stale    fraction of data present at ANALYZE time (default 0.5)
//	-zipf     Zipfian skew for non-key attributes (default 0)
//	-pool     buffer pool pages (default 256)
//	-mem      per-query memory budget in bytes (default 2 MiB)
//	-explain  print the annotated plan instead of executing
//	-analyze  EXPLAIN ANALYZE: execute, then print the plan annotated
//	          with per-operator actual rows, time, and memory
//	-trace    print the query's lifecycle event log
//	-timeout  per-query deadline (e.g. 30s; 0 = none); expired queries
//	          abort mid-execution with their temp state cleaned up
//	-parallel intra-query degree of parallelism: plan segments run on
//	          this many worker goroutines behind exchange operators
//	          (default 1 = serial)
//	-rows     print at most this many result rows (default 10)
//	-server   serve the loaded database over HTTP on this address
//	          instead of running queries locally
//	-slow-query-ms  with -server: log a structured warning for any
//	          statement slower than this many milliseconds (0 = off)
//	-connect  run as a thin client against a running mqr-server at this
//	          address (no local data is loaded)
//	-tenant   with -connect: bill the session's queries to this tenant's
//	          service class (weighted fair-share admission, memory
//	          quota, priority; empty = the default class)
//	-weight   with -connect and -tenant: install this fair-share weight
//	          for the tenant server-side before querying (0 keeps the
//	          server's current setting)
//	-watch    with -connect: instead of running queries, poll the
//	          server's /status and /progress at this interval and render
//	          the live queries (fraction, suboptimality score, per-op
//	          rows) until interrupted
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	midquery "repro"
	"repro/internal/server"
	"repro/internal/tenant"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.01, "TPC-D scale factor")
		mode    = flag.String("mode", "full", "re-optimization mode: off|memory|plan|full|restart")
		stale   = flag.Float64("stale", 0.5, "fraction of data loaded when ANALYZE ran (0 = fresh)")
		zipf    = flag.Float64("zipf", 0, "Zipfian skew z for non-key attributes")
		pool    = flag.Int("pool", 256, "buffer pool pages (8 KiB each)")
		mem     = flag.Float64("mem", 2<<20, "per-query memory budget in bytes")
		explain = flag.Bool("explain", false, "print the annotated plan instead of executing")
		analyze = flag.Bool("analyze", false, "EXPLAIN ANALYZE: execute and print the plan with actuals")
		trace   = flag.Bool("trace", false, "print the query's lifecycle event log")
		timeout = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		par     = flag.Int("parallel", 1, "intra-query degree of parallelism (1 = serial)")
		maxRows = flag.Int("rows", 10, "result rows to print")
		seed    = flag.Int64("seed", 1, "data generator seed")
		serveOn = flag.String("server", "", "serve the database over HTTP on this address instead of querying")
		slowMS  = flag.Int64("slow-query-ms", 0, "with -server: warn about statements slower than this (0 = off)")
		connect = flag.String("connect", "", "run queries against a running mqr-server at this address")
		watch   = flag.Duration("watch", 0, "with -connect: poll live progress at this interval instead of querying")
		ten     = flag.String("tenant", "", "with -connect: bill queries to this tenant's service class")
		weight  = flag.Float64("weight", 0, "with -connect and -tenant: set the tenant's fair-share weight (0 = leave as is)")
	)
	flag.Parse()

	if *serveOn != "" && *connect != "" {
		fatal(fmt.Errorf("-server and -connect are mutually exclusive"))
	}

	if *connect != "" && *watch > 0 {
		os.Exit(runWatch(*connect, *watch))
	}

	queries := selectQueries()

	if *connect != "" {
		os.Exit(runThinClient(*connect, *mode, *ten, *weight, queries, *maxRows, *analyze, *trace, *timeout))
	}

	fmt.Printf("loading TPC-D SF %g (stale=%.2f zipf=%.1f) ...\n", *sf, *stale, *zipf)
	db := midquery.Open(midquery.Options{BufferPoolPages: *pool})
	if err := db.LoadTPCD(midquery.TPCDConfig{
		SF: *sf, Zipf: *zipf, Seed: *seed, StaleFrac: *stale,
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("loaded (%.0f simulated cost units)\n\n", db.Cost())

	if *serveOn != "" {
		m := db.NewSessionManager(midquery.SessionConfig{})
		srv := server.New(m)
		if *slowMS > 0 {
			srv.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
			srv.SetSlowQueryThreshold(time.Duration(*slowMS) * time.Millisecond)
		}
		fmt.Printf("serving on %s\n", *serveOn)
		if err := srv.ListenAndServe(*serveOn); err != nil {
			fatal(err)
		}
		return
	}

	md, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	opts := midquery.ExecOptions{Mode: md, MemBudget: *mem, Trace: *trace, Timeout: *timeout, Parallel: *par}
	failed := 0
	for _, nq := range queries {
		fmt.Printf("=== %s\n", nq.name)
		if *explain {
			text, err := db.Explain(nq.sql, opts)
			if err != nil {
				queryError(nq.name, err, &failed)
				continue
			}
			fmt.Println(text)
			continue
		}
		db.DropCaches()
		var res *midquery.Result
		var err error
		if *analyze {
			res, err = db.ExplainAnalyze(nq.sql, opts)
		} else {
			res, err = db.Exec(nq.sql, opts)
		}
		if err != nil {
			queryError(nq.name, err, &failed)
			continue
		}
		if res.RowsAffected > 0 {
			fmt.Printf("cost=%.0f rows_affected=%d\n", res.Cost, res.RowsAffected)
		} else {
			fmt.Printf("cost=%.0f rows=%d collectors=%d reallocs=%d switches=%d\n",
				res.Cost, len(res.Rows), res.Stats.CollectorsInserted,
				res.Stats.MemReallocs, res.Stats.PlanSwitches)
		}
		if res.Stats.Degree > 1 {
			fmt.Printf("degree=%d workers=%d wall=%.0f (%.2fx overlap)\n",
				res.Stats.Degree, res.Stats.WorkersSpawned, res.WallCost,
				res.Cost/maxf(res.WallCost, 1))
		}
		for _, d := range res.Stats.Decisions {
			fmt.Println("  " + d)
		}
		if res.Plan != "" {
			fmt.Print(res.Plan)
		}
		for _, ev := range res.Trace {
			fmt.Println("  " + ev.String())
		}
		if len(res.Columns) > 0 {
			fmt.Println("  " + strings.Join(res.Columns, " | "))
		}
		for i, r := range res.Rows {
			if i >= *maxRows {
				fmt.Printf("  ... %d more rows\n", len(res.Rows)-i)
				break
			}
			fmt.Println("  " + r.String())
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mqr: %d of %d queries failed\n", failed, len(queries))
		os.Exit(1)
	}
}

// runThinClient sends the queries to a running mqr-server and renders
// the responses; returns the process exit code.
func runThinClient(addr, mode, ten string, weight float64, queries []namedQuery, maxRows int, analyze, trace bool, timeout time.Duration) int {
	c, err := server.DialTenant(addr, ten)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mqr:", err)
		return 1
	}
	if weight > 0 && ten != "" {
		cfg := tenant.Config{Weight: weight}
		if err := c.ConfigureTenant(ten, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "mqr:", err)
			return 1
		}
	}
	failed := 0
	for _, nq := range queries {
		fmt.Printf("=== %s\n", nq.name)
		res, err := c.Exec(server.QueryRequest{
			SQL: nq.sql, Mode: mode, Explain: analyze, Trace: trace,
			TimeoutMs: timeout.Milliseconds(),
		})
		if err != nil {
			queryError(nq.name, err, &failed)
			continue
		}
		fmt.Printf("cost=%.0f rows=%d tag=%s cache_hit=%t", res.Cost, len(res.Rows), res.Query, res.CacheHit)
		if res.RowsAffected > 0 {
			fmt.Printf(" rows_affected=%d", res.RowsAffected)
		}
		if res.Stats != nil {
			fmt.Printf(" collectors=%d reallocs=%d switches=%d",
				res.Stats.CollectorsInserted, res.Stats.MemReallocs, res.Stats.PlanSwitches)
		}
		fmt.Println()
		if res.Plan != "" {
			fmt.Print(res.Plan)
		}
		for _, ev := range res.Trace {
			fmt.Println("  " + ev.String())
		}
		if len(res.Columns) > 0 {
			fmt.Println("  " + strings.Join(res.Columns, " | "))
		}
		for i, r := range res.Rows {
			if i >= maxRows {
				fmt.Printf("  ... %d more rows\n", len(res.Rows)-i)
				break
			}
			fmt.Println("  (" + strings.Join(r, ", ") + ")")
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mqr: %d of %d queries failed\n", failed, len(queries))
		return 1
	}
	return 0
}

// runWatch polls /status and /progress, rendering each running query's
// fraction, live suboptimality score, and per-operator rows until the
// process is interrupted; returns the process exit code.
func runWatch(addr string, interval time.Duration) int {
	c, err := server.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mqr:", err)
		return 1
	}
	for {
		st, err := c.Status()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mqr:", err)
			return 1
		}
		ps, err := c.Progress("")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mqr:", err)
			return 1
		}
		fmt.Printf("--- %s  queries=%d running=%d broker_avail=%.0fMB queue=%d\n",
			time.Now().Format("15:04:05"), st.Queries, len(st.Running),
			st.Broker.AvailBytes/(1<<20), st.Broker.Waiting)
		for _, p := range ps {
			fmt.Printf("%-10s %5.1f%%  score=%.2f  cost=%.0f/%.0f  ckpt=%d sw=%d  %s\n",
				p.Query, p.Fraction*100, p.Score, p.Cost, p.EstCost,
				p.Checkpoints, p.Switches, truncate(p.SQL, 60))
			for _, o := range p.Operators {
				fmt.Printf("  %s%-20s %-8s rows=%d/%.0f\n",
					strings.Repeat("  ", o.Depth), o.Label, o.State, o.Rows, o.EstRows)
			}
		}
		time.Sleep(interval)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func selectQueries() []namedQuery {
	var queries []namedQuery
	if flag.NArg() == 0 {
		for _, q := range midquery.TPCDQueries() {
			queries = append(queries, namedQuery{q.Name + " (" + string(q.Class) + ")", q.SQL})
		}
		return queries
	}
	arg := strings.Join(flag.Args(), " ")
	if strings.HasPrefix(arg, "@") {
		q := midquery.Q(strings.TrimPrefix(arg, "@"))
		return []namedQuery{{q.Name, q.SQL}}
	}
	return []namedQuery{{"query", arg}}
}

type namedQuery struct {
	name string
	sql  string
}

func parseMode(s string) (midquery.Mode, error) {
	switch strings.ToLower(s) {
	case "off", "normal":
		return midquery.ReoptOff, nil
	case "memory", "mem":
		return midquery.ReoptMemoryOnly, nil
	case "plan":
		return midquery.ReoptPlanOnly, nil
	case "full":
		return midquery.ReoptFull, nil
	case "restart":
		return midquery.ReoptRestart, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

// queryError reports one failed query and keeps going; the process
// exits non-zero at the end.
func queryError(name string, err error, failed *int) {
	fmt.Fprintf(os.Stderr, "mqr: %s: %v\n", name, err)
	*failed++
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mqr:", err)
	os.Exit(1)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
