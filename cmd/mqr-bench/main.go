// Command mqr-bench regenerates the paper's evaluation figures from the
// command line (the same harness backs the go-test benchmarks).
//
// Usage:
//
//	mqr-bench -fig 10        # Figure 10: Normal vs Re-Optimized
//	mqr-bench -fig 11        # Figure 11: memory-only vs plan-only
//	mqr-bench -fig 12        # Figure 12: skew z=0.3 and z=0.6
//	mqr-bench -fig mu        # μ-overhead guarantee
//	mqr-bench -fig sens      # θ₂ sensitivity sweep
//	mqr-bench -fig abl       # design-choice ablations
//	mqr-bench -fig hist      # catalog histogram families
//	mqr-bench -fig hybrid    # parametric/dynamic hybrid (paper §4)
//	mqr-bench -fig parallel  # intra-query parallelism sweep
//	mqr-bench -fig mixed     # concurrent write/read workload
//	mqr-bench -fig overhead  # live-progress monitoring overhead
//	mqr-bench -fig qos       # multi-tenant fairness and preemption
//	mqr-bench -fig all       # everything
//
// The mixed figure runs -writers concurrent writer sessions (each
// committing -write-txns MVCC transactions against orders: batch
// inserts plus a contended hot-row update) while the medium and complex
// queries sweep under full re-optimization, and reports write
// throughput, conflict counts, and the read-side estimate-error and
// switch-rate summary.
//
// The overhead figure measures real wall-clock time of the medium and
// complex queries with live-progress monitoring on vs off (min over
// -reps runs, interleaved arms). With -progress-gate X the process
// exits non-zero if the geometric-mean slowdown exceeds X — the CI
// regression gate on monitoring cost.
//
// The qos figure drives closed-loop multi-tenant load (-qos-workers
// sessions per tenant, -qos-duration measured after -qos-warmup)
// against a deliberately small memory pool and reports per-tenant
// throughput, latency percentiles, preemption counts, and Jain's
// fairness index in three phases: equal weights, 3:1 weights, and
// priority preemption. With -qos-jain-gate J the process exits non-zero
// if the equal-weights Jain index falls below J; with -qos-ratio-tol T
// it exits non-zero if the weighted phase's measured throughput ratio
// is outside (1±T)x the configured 3:1 — the CI fairness gates.
//
// The parallel figure sweeps exchange-operator degrees 1..N (set N with
// -parallel, default 4) over the medium and complex queries and reports
// per-degree wall speedup and switch rate. With -parallel-gate X the
// process exits non-zero if the geometric-mean wall speedup at the top
// degree falls below X — a self-checking CI gate with no JSON parsing.
//
// With -json FILE ("-" for stdout) the run also emits a
// machine-readable report: the configuration, every figure's rows, and
// a per-figure metrics summary with estimate-error (geometric mean of
// actual/estimated cost) and switch-rate columns, for tracking the
// engine's behavior across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/bench"
)

// figure is one figure's entry in the JSON report.
type figure struct {
	Rows     any                    `json:"rows"`
	Summary  *bench.Summary         `json:"summary,omitempty"`
	Parallel *bench.ParallelSummary `json:"parallel_summary,omitempty"`
	Writes   *bench.WriteStats      `json:"writes,omitempty"`
	Overhead *bench.OverheadSummary `json:"overhead_summary,omitempty"`
	QoS      *bench.QoSSummary      `json:"qos_summary,omitempty"`
}

// report is the -json output document.
type report struct {
	Config  bench.Config      `json:"config"`
	Figures map[string]figure `json:"figures"`
}

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate: 10|11|12|mu|sens|abl|hist|hybrid|parallel|mixed|overhead|all")
		sf      = flag.Float64("sf", 0.01, "TPC-D scale factor")
		pool    = flag.Int("pool", 256, "buffer pool pages")
		mem     = flag.Float64("mem", 2<<20, "per-query memory budget in bytes")
		stale   = flag.Float64("stale", 0.5, "fraction of data loaded when ANALYZE ran")
		seed    = flag.Int64("seed", 0, "data generator seed")
		par     = flag.Int("parallel", 4, "top degree for the parallel sweep (degrees 1,2,..,N by doubling)")
		parGate = flag.Float64("parallel-gate", 0, "exit non-zero if top-degree geomean wall speedup is below this (0 = no gate)")
		writers = flag.Int("writers", 4, "concurrent writer sessions for the mixed workload")
		wtxns   = flag.Int("write-txns", 30, "transactions each mixed-workload writer commits")
		reps    = flag.Int("reps", 3, "measured repetitions per arm for the overhead figure")
		ovGate  = flag.Float64("progress-gate", 0, "exit non-zero if the overhead geomean wall ratio exceeds this (0 = no gate)")
		qosWrk  = flag.Int("qos-workers", 64, "closed-loop sessions per tenant for the qos figure")
		qosWarm = flag.Duration("qos-warmup", 500*time.Millisecond, "unmeasured warmup per qos phase")
		qosDur  = flag.Duration("qos-duration", 3*time.Second, "measured window per qos phase")
		qosJain = flag.Float64("qos-jain-gate", 0, "exit non-zero if the equal-weights Jain index is below this (0 = no gate)")
		qosTol  = flag.Float64("qos-ratio-tol", 0, "exit non-zero if the weighted throughput ratio is outside (1±tol)x the configured 3:1 (0 = no gate)")
		jsonOut = flag.String("json", "", `write a JSON report to this file ("-" for stdout)`)
	)
	flag.Parse()

	cfg := bench.Default()
	cfg.SF = *sf
	cfg.PoolPages = *pool
	cfg.MemBudget = *mem
	cfg.StaleFrac = *stale
	cfg.Seed = *seed

	rep := report{Config: cfg, Figures: map[string]figure{}}
	record := func(name string, rows any, sum *bench.Summary) {
		rep.Figures[name] = figure{Rows: rows, Summary: sum}
	}
	summarized := func(name string, rows []bench.Row) {
		s := bench.Summarize(rows)
		record(name, rows, &s)
	}

	run := func(name string) {
		switch name {
		case "10":
			rows, err := bench.Figure10(cfg)
			check(err)
			fmt.Println(bench.FormatRows("Figure 10: Normal vs Re-Optimized", rows))
			summarized("figure10", rows)
		case "11":
			rows, err := bench.Figure11(cfg)
			check(err)
			fmt.Println(bench.FormatRows("Figure 11: memory-only vs plan-only", rows))
			summarized("figure11", rows)
		case "12":
			for _, z := range []float64{0.3, 0.6} {
				rows, err := bench.Figure12(cfg, z)
				check(err)
				fmt.Println(bench.FormatRows(fmt.Sprintf("Figure 12: Zipf z=%.1f", z), rows))
				summarized(fmt.Sprintf("figure12_z%.1f", z), rows)
			}
		case "mu":
			rows, err := bench.MuGuarantee(cfg, []float64{0.01, 0.05, 0.2})
			check(err)
			fmt.Println("Mu guarantee (overhead on non-benefiting queries):")
			for _, r := range rows {
				fmt.Printf("  mu=%.2f %-4s overhead=%+.2f%%\n", r.Mu, r.Query, r.Overhead*100)
			}
			fmt.Println()
			record("mu_guarantee", rows, nil)
		case "sens":
			rows, err := bench.Sensitivity(cfg, []float64{0.05, 0.2, 0.5, 1.0})
			check(err)
			fmt.Println("Theta2 sensitivity, plan-only mode (medium and complex queries):")
			for _, r := range rows {
				fmt.Printf("  theta2=%.2f %-4s full=%8.0f (normal %8.0f) switches=%d\n",
					r.Theta2, r.Query, r.Full, r.Off, r.Switches)
			}
			fmt.Println()
			record("sensitivity", rows, nil)
		case "abl":
			rows, err := bench.Ablations(cfg)
			check(err)
			fmt.Println("Ablations (complex queries):")
			for _, r := range rows {
				fmt.Printf("  %-4s %-12s %8.0f\n", r.Query, r.Variant, r.Cost)
			}
			fmt.Println()
			record("ablations", rows, nil)
		case "hybrid":
			rows, err := bench.Hybrid(cfg)
			check(err)
			fmt.Println("Parametric/dynamic hybrid (host-variable Q3 variant, selective bindings):")
			for _, r := range rows {
				fmt.Printf("  %-12s %8.0f (switches=%d)\n", r.Variant, r.Cost, r.Switches)
			}
			fmt.Println()
			record("hybrid", rows, nil)
		case "parallel":
			rows, err := bench.Parallel(cfg, *par)
			check(err)
			fmt.Println(bench.FormatParallel(
				fmt.Sprintf("Intra-query parallelism (degrees 1..%d, full re-optimization):", *par), rows))
			s := bench.SummarizeParallel(rows)
			rep.Figures["parallel"] = figure{Rows: rows, Parallel: &s}
			if *parGate > 0 {
				key := fmt.Sprintf("d%d", topDegree(*par))
				got, measured := s.Speedup[key]
				if !measured {
					// No qualifying queries at the gated degree: the
					// summary marks the degree skipped rather than
					// reporting a fake 0/1.0, and the gate must not
					// pass (or fail with a misleading number) on a
					// measurement that never happened.
					fmt.Fprintf(os.Stderr,
						"mqr-bench: parallel gate failed: %s skipped (no qualifying queries measured)\n", key)
					os.Exit(1)
				}
				if got < *parGate {
					fmt.Fprintf(os.Stderr,
						"mqr-bench: parallel gate failed: %s geomean wall speedup %.2f < %.2f\n",
						key, got, *parGate)
					os.Exit(1)
				}
				fmt.Printf("parallel gate passed: %s geomean wall speedup %.2f >= %.2f\n\n",
					key, got, *parGate)
			}
		case "mixed":
			res, err := bench.Mixed(cfg, *writers, *wtxns)
			check(err)
			fmt.Println(bench.FormatMixed(res))
			s := bench.Summarize(res.Reads)
			w := res.Writes
			rep.Figures["mixed"] = figure{Rows: res.Reads, Summary: &s, Writes: &w}
		case "overhead":
			rows, err := bench.ProgressOverhead(cfg, *reps)
			check(err)
			fmt.Println(bench.FormatOverhead(
				"Live-progress monitoring overhead (real wall time, min of reps):", rows))
			s := bench.SummarizeOverhead(rows)
			rep.Figures["overhead"] = figure{Rows: rows, Overhead: &s}
			if *ovGate > 0 {
				if s.Skipped {
					fmt.Fprintln(os.Stderr,
						"mqr-bench: progress gate failed: no valid overhead measurements")
					os.Exit(1)
				}
				if s.GeomeanRatio > *ovGate {
					fmt.Fprintf(os.Stderr,
						"mqr-bench: progress gate failed: geomean wall ratio %.3f > %.3f (max %.3f)\n",
						s.GeomeanRatio, *ovGate, s.MaxRatio)
					os.Exit(1)
				}
				fmt.Printf("progress gate passed: geomean wall ratio %.3f <= %.3f (max %.3f)\n\n",
					s.GeomeanRatio, *ovGate, s.MaxRatio)
			}
		case "qos":
			res, err := bench.QoS(cfg, *qosWrk, *qosWarm, *qosDur)
			check(err)
			fmt.Println(bench.FormatQoS(res))
			s := res.Summary
			rep.Figures["qos"] = figure{Rows: res, QoS: &s}
			if *qosJain > 0 && s.EqualJain < *qosJain {
				fmt.Fprintf(os.Stderr,
					"mqr-bench: qos fairness gate failed: equal-weights Jain %.3f < %.3f\n",
					s.EqualJain, *qosJain)
				os.Exit(1)
			}
			if *qosTol > 0 {
				lo, hi := s.WeightRatio*(1-*qosTol), s.WeightRatio*(1+*qosTol)
				if math.IsInf(s.ThroughputRatio, 0) || s.ThroughputRatio < lo || s.ThroughputRatio > hi {
					fmt.Fprintf(os.Stderr,
						"mqr-bench: qos ratio gate failed: throughput ratio %.2f outside [%.2f, %.2f]\n",
						s.ThroughputRatio, lo, hi)
					os.Exit(1)
				}
			}
			if *qosJain > 0 || *qosTol > 0 {
				fmt.Printf("qos gates passed: jain=%.3f ratio=%.2f (configured %.0f:1)\n\n",
					s.EqualJain, s.ThroughputRatio, s.WeightRatio)
			}
		case "hist":
			rows, err := bench.HistFamilies(cfg)
			check(err)
			fmt.Println("Catalog histogram families (complex queries):")
			for _, r := range rows {
				fmt.Printf("  %-10s %-4s normal=%8.0f full=%8.0f switches=%d\n",
					r.Family, r.Query, r.Off, r.Full, r.Switches)
			}
			fmt.Println()
			record("hist_families", rows, nil)
		default:
			fmt.Fprintf(os.Stderr, "mqr-bench: unknown figure %q\n", name)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, name := range []string{"10", "11", "12", "mu", "sens", "abl", "hist", "hybrid", "parallel", "mixed", "overhead", "qos"} {
			run(name)
		}
	} else {
		run(*fig)
	}

	if *jsonOut != "" {
		check(writeReport(*jsonOut, rep))
	}
}

func writeReport(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// topDegree returns the largest degree the doubling sweep 1,2,4,...
// actually reaches without exceeding max.
func topDegree(max int) int {
	d := 1
	for d*2 <= max {
		d *= 2
	}
	return d
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mqr-bench:", err)
		os.Exit(1)
	}
}
