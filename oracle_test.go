package midquery

// Whole-stack randomized test: random schemas, data, and queries are
// executed through the full engine in every re-optimization mode and
// compared against an independent naive reference evaluator. The
// generator and reference live in internal/fuzz (shared with the
// mqr-fuzz differential harness, which runs the same cases across a
// much larger configuration matrix); this test replays each generated
// case through the public DB API, so the root-package surface —
// Open/CreateTable/Insert/Analyze/Exec — stays covered end to end.

import (
	"math/rand"
	"testing"

	"repro/internal/fuzz"
)

// replayOracleDB rebuilds a generated fuzz case through the public API,
// reproducing the same staleness point (ANALYZE mid-load), histogram
// family, and index choices the generator made.
func replayOracleDB(t *testing.T, env *fuzz.Env) *DB {
	t.Helper()
	db := Open(Options{BufferPoolPages: 128})
	for _, td := range env.Tables {
		cols := []Column{
			{Name: td.Name + "_pk", Kind: KindInt, Key: true},
			{Name: td.Name + "_fk", Kind: KindInt},
			{Name: td.Name + "_grp", Kind: KindInt},
			{Name: td.Name + "_val", Kind: KindFloat},
		}
		if err := db.CreateTable(td.Name, cols...); err != nil {
			t.Fatal(err)
		}
		for i, row := range td.Rows {
			if err := db.Insert(td.Name, row[0], row[1], row[2], row[3]); err != nil {
				t.Fatal(err)
			}
			if i+1 == td.AnalyzeAt {
				if err := db.Analyze(td.Name, td.Family); err != nil {
					t.Fatal(err)
				}
			}
		}
		if td.Indexed {
			if err := db.CreateIndex(td.Name, td.Name+"_pk"); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// checkOracle compares an engine result against the case's naive
// reference answer.
func checkOracle(t *testing.T, env *fuzz.Env, label string, rows []Tuple) {
	t.Helper()
	got := fuzz.Canonical(rows)
	if len(got) != len(env.Want) {
		t.Fatalf("%s: %d rows, oracle %d\nquery: %s", label, len(got), len(env.Want), env.SQL)
	}
	for i := range got {
		if got[i] != env.Want[i] {
			t.Fatalf("%s row %d:\n got %s\nwant %s\nquery: %s", label, i, got[i], env.Want[i], env.SQL)
		}
	}
}

func TestOracleRandomizedAllModes(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	modes := []Mode{ReoptOff, ReoptMemoryOnly, ReoptPlanOnly, ReoptFull, ReoptRestart}
	for trial := 0; trial < trials; trial++ {
		c := fuzz.NewCase(int64(1000 + trial))
		c.HostVar = false
		// Cap the heavy tail: the mqr-fuzz harness owns large-data
		// coverage; here 25 trials x 5 modes must stay quick.
		if c.MaxRows > 620 {
			c.MaxRows = 620
		}
		env, err := fuzz.Build(c)
		if err != nil {
			t.Fatal(err)
		}
		db := replayOracleDB(t, env)
		r := rand.New(rand.NewSource(c.Seed))
		for _, mode := range modes {
			// Random tight budgets exercise the spill paths too.
			budget := float64(64<<10 + r.Intn(1<<20))
			res, err := db.Exec(env.SQL, ExecOptions{Mode: mode, MemBudget: budget, SpliceSwitch: r.Intn(2) == 0})
			if err != nil {
				t.Fatalf("case %s mode %v: %v\nquery: %s", c, mode, err, env.SQL)
			}
			checkOracle(t, env, c.String()+" mode "+mode.String(), res.Rows)
		}
	}
}

// TestOracleHostVariables repeats the oracle check with host-variable
// predicates, whose unknowable selectivities are the main trigger for
// mid-query re-optimization. Unlike the original version of this test,
// the naive reference covers the host-variable plans directly — no
// trusted-baseline indirection through ModeOff.
func TestOracleHostVariables(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		c := fuzz.NewCase(int64(7000 + trial))
		c.HostVar = true
		if c.MaxRows > 620 {
			c.MaxRows = 620
		}
		env, err := fuzz.Build(c)
		if err != nil {
			t.Fatal(err)
		}
		db := replayOracleDB(t, env)
		r := rand.New(rand.NewSource(c.Seed))
		for _, mode := range []Mode{ReoptOff, ReoptMemoryOnly, ReoptPlanOnly, ReoptFull, ReoptRestart} {
			res, err := db.Exec(env.SQL, ExecOptions{
				Mode: mode, Params: env.Params,
				MemBudget:    float64(64<<10 + r.Intn(1<<20)),
				SpliceSwitch: trial%2 == 0,
			})
			if err != nil {
				t.Fatalf("case %s mode %v: %v", c, mode, err)
			}
			checkOracle(t, env, c.String()+" mode "+mode.String(), res.Rows)
		}
	}
}
