package midquery

// Whole-stack randomized test: random schemas, data, and queries are
// executed through the full engine in every re-optimization mode and
// compared against an independent naive reference evaluator (cartesian
// product + filter + hash aggregation over the raw heap data). This is
// the strongest correctness invariant in the repository: whatever the
// optimizer, memory manager, SCIA, and dispatcher decide — including
// mid-query plan switches — answers must equal the naive semantics.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/types"
)

// oracleDB holds raw table contents for the reference evaluator.
type oracleDB struct {
	db     *DB
	tables []oracleTable
}

type oracleTable struct {
	name string
	cols []string // unqualified column names
	rows []types.Tuple
}

// buildRandomDB creates nTables random tables with random integer data.
func buildRandomDB(r *rand.Rand, nTables int) (*oracleDB, error) {
	db := Open(Options{BufferPoolPages: 128})
	o := &oracleDB{db: db}
	for ti := 0; ti < nTables; ti++ {
		name := fmt.Sprintf("t%d", ti)
		cols := []Column{
			{Name: name + "_pk", Kind: KindInt, Key: true},
			{Name: name + "_fk", Kind: KindInt},
			{Name: name + "_grp", Kind: KindInt},
			{Name: name + "_val", Kind: KindFloat},
		}
		if err := db.CreateTable(name, cols...); err != nil {
			return nil, err
		}
		rows := 20 + r.Intn(600)
		fkDomain := 1 + r.Intn(rows)
		grpDomain := 1 + r.Intn(10)
		ot := oracleTable{name: name, cols: []string{name + "_pk", name + "_fk", name + "_grp", name + "_val"}}
		for i := 0; i < rows; i++ {
			tup := types.Tuple{
				types.NewInt(int64(i)),
				types.NewInt(int64(r.Intn(fkDomain))),
				types.NewInt(int64(r.Intn(grpDomain))),
				types.NewFloat(float64(r.Intn(1000))),
			}
			if err := db.Insert(name, tup[0], tup[1], tup[2], tup[3]); err != nil {
				return nil, err
			}
			ot.rows = append(ot.rows, tup)
		}
		fam := []HistFamily{MaxDiff, EquiDepth, EquiWidth}[r.Intn(3)]
		if err := db.Analyze(name, fam); err != nil {
			return nil, err
		}
		if r.Intn(2) == 0 {
			if err := db.CreateIndex(name, name+"_pk"); err != nil {
				return nil, err
			}
		}
		o.tables = append(o.tables, ot)
	}
	return o, nil
}

// randomQuery builds a chain-join query over k tables with random
// filters and an optional aggregation. It returns the SQL plus the
// reference answer computed naively.
func (o *oracleDB) randomQuery(r *rand.Rand, k int) (string, []types.Tuple, error) {
	if k > len(o.tables) {
		k = len(o.tables)
	}
	used := o.tables[:k]

	var from, where []string
	for i, t := range used {
		from = append(from, t.name)
		if i > 0 {
			// Chain equi-join: prev.fk = cur.pk.
			where = append(where, fmt.Sprintf("%s.%s_fk = %s.%s_pk",
				used[i-1].name, used[i-1].name, t.name, t.name))
		}
	}
	// Random filters.
	var preds []func(row types.Tuple, base int) bool
	predsBase := map[int]int{}
	for i, t := range used {
		if r.Intn(2) == 0 {
			cut := r.Intn(1000)
			where = append(where, fmt.Sprintf("%s_val < %d", t.name, cut))
			idx := len(preds)
			preds = append(preds, func(row types.Tuple, base int) bool {
				return row[base+3].Float() < float64(cut)
			})
			predsBase[idx] = i * 4
		}
	}

	grouped := r.Intn(2) == 0
	var src string
	if grouped {
		src = fmt.Sprintf("select %s_grp, count(*) as cnt, sum(%s_val) as sv from %s where %s group by %s_grp",
			used[0].name, used[k-1].name, strings.Join(from, ", "), strings.Join(where, " and "), used[0].name)
	} else {
		src = fmt.Sprintf("select %s_pk, %s_pk from %s where %s",
			used[0].name, used[k-1].name, strings.Join(from, ", "), strings.Join(where, " and "))
	}
	if len(where) == 0 {
		src = strings.Replace(src, " where ", " ", 1)
	}

	// Naive evaluation: nested loops over the chain.
	var joined []types.Tuple
	var recurse func(depth int, acc types.Tuple)
	recurse = func(depth int, acc types.Tuple) {
		if depth == k {
			for idx, p := range preds {
				if !p(acc, predsBase[idx]) {
					return
				}
			}
			joined = append(joined, acc)
			return
		}
		t := used[depth]
		for _, row := range t.rows {
			if depth > 0 {
				prevFk := acc[(depth-1)*4+1]
				if !prevFk.Equal(row[0]) {
					continue
				}
			}
			recurse(depth+1, acc.Concat(row))
		}
	}
	recurse(0, types.Tuple{})

	var want []types.Tuple
	if grouped {
		type aggState struct {
			cnt int64
			sum float64
		}
		groups := map[int64]*aggState{}
		for _, row := range joined {
			g := row[2].Int() // first table's grp
			if groups[g] == nil {
				groups[g] = &aggState{}
			}
			groups[g].cnt++
			groups[g].sum += row[(k-1)*4+3].Float()
		}
		for g, st := range groups {
			want = append(want, types.Tuple{types.NewInt(g), types.NewInt(st.cnt), types.NewFloat(st.sum)})
		}
	} else {
		for _, row := range joined {
			want = append(want, types.Tuple{row[0], row[(k-1)*4]})
		}
	}
	return src, want, nil
}

func canonical(rows []types.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			// Sums of floats can differ in the last bits across
			// evaluation orders; canonicalize with limited precision.
			if v.Kind() == types.KindFloat {
				parts[j] = fmt.Sprintf("%.6g", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func TestOracleRandomizedAllModes(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	modes := []Mode{ReoptOff, ReoptMemoryOnly, ReoptPlanOnly, ReoptFull, ReoptRestart}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		o, err := buildRandomDB(r, 2+r.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		src, want, err := o.randomQuery(r, 2+r.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		wantCanon := canonical(want)
		for _, mode := range modes {
			// Random tight budgets exercise the spill paths too.
			budget := float64(64<<10 + r.Intn(1<<20))
			res, err := o.db.Exec(src, ExecOptions{Mode: mode, MemBudget: budget, SpliceSwitch: r.Intn(2) == 0})
			if err != nil {
				t.Fatalf("trial %d mode %v: %v\nquery: %s", trial, mode, err, src)
			}
			got := canonical(res.Rows)
			if len(got) != len(wantCanon) {
				t.Fatalf("trial %d mode %v: %d rows, oracle %d\nquery: %s",
					trial, mode, len(got), len(wantCanon), src)
			}
			for i := range got {
				if got[i] != wantCanon[i] {
					t.Fatalf("trial %d mode %v row %d:\n got %s\nwant %s\nquery: %s",
						trial, mode, i, got[i], wantCanon[i], src)
				}
			}
		}
	}
}

// TestOracleHostVariables repeats the oracle check with host-variable
// predicates, whose unknowable selectivities are the main trigger for
// mid-query re-optimization.
func TestOracleHostVariables(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(7000 + trial)))
		o, err := buildRandomDB(r, 3)
		if err != nil {
			t.Fatal(err)
		}
		cut := float64(r.Intn(1200)) // sometimes keeps everything
		src := `select t0_grp, count(*) as cnt from t0, t1, t2
			where t0.t0_fk = t1.t1_pk and t1.t1_fk = t2.t2_pk and t0_val < :cut
			group by t0_grp`
		params := map[string]Value{"cut": NewFloat(cut)}

		// Oracle via the engine's own parser but naive semantics is
		// avoided here; instead compare against ModeOff, which the
		// previous test validated against the true oracle.
		base, err := o.db.Exec(src, ExecOptions{Mode: ReoptOff, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ReoptMemoryOnly, ReoptPlanOnly, ReoptFull, ReoptRestart} {
			res, err := o.db.Exec(src, ExecOptions{
				Mode: mode, Params: params,
				MemBudget:    float64(64<<10 + r.Intn(1<<20)),
				SpliceSwitch: trial%2 == 0,
			})
			if err != nil {
				t.Fatalf("trial %d mode %v: %v", trial, mode, err)
			}
			got, want := canonical(res.Rows), canonical(base.Rows)
			if len(got) != len(want) {
				t.Fatalf("trial %d mode %v: %d vs %d rows", trial, mode, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d mode %v row %d: %s vs %s", trial, mode, i, got[i], want[i])
				}
			}
		}
	}
}
