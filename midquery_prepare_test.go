package midquery

import (
	"strings"
	"testing"
)

const hybridTestQuery = `
	select l_orderkey, sum(l_extendedprice) as revenue
	from customer, orders, lineitem
	where customer.c_custkey = orders.o_custkey
	  and lineitem.l_orderkey = orders.o_orderkey
	  and o_totalprice < :cap
	group by l_orderkey order by revenue desc limit 10`

func TestPrepareCandidatesAndExec(t *testing.T) {
	db := Open(Options{BufferPoolPages: 256})
	if err := db.LoadTPCD(TPCDConfig{SF: 0.005, Seed: 2, FactIndexes: true}); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(hybridTestQuery, ExecOptions{Mode: ReoptFull, MemBudget: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cands := prep.Candidates()
	if len(cands) < 2 {
		t.Fatalf("candidates = %v, want at least 2 shapes", cands)
	}

	params := map[string]Value{"cap": NewFloat(1040)}
	db.DropCaches()
	static, err := db.Exec(hybridTestQuery, ExecOptions{Mode: ReoptOff, MemBudget: 2 << 20, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	db.DropCaches()
	hybrid, err := prep.Exec(params)
	if err != nil {
		t.Fatal(err)
	}
	compareRows(t, "prepared", hybrid.Rows, static.Rows)
	if len(hybrid.Stats.Decisions) == 0 ||
		!strings.Contains(hybrid.Stats.Decisions[0], "parametric: chose scenario") {
		t.Errorf("decision log missing parametric choice: %v", hybrid.Stats.Decisions)
	}
	if hybrid.Cost >= static.Cost {
		t.Errorf("hybrid %.0f did not beat static %.0f on an anticipated selective binding",
			hybrid.Cost, static.Cost)
	}
}

func TestPrepareRepeatedExecutions(t *testing.T) {
	db := Open(Options{BufferPoolPages: 256})
	if err := db.LoadTPCD(TPCDConfig{SF: 0.002, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(
		"select count(*) as n from orders where o_totalprice < :cap",
		ExecOptions{Mode: ReoptFull},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Each execution re-chooses; different bindings give different
	// counts, and a Prepared is reusable.
	lo, err := prep.Exec(map[string]Value{"cap": NewFloat(1100)})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := prep.Exec(map[string]Value{"cap": NewFloat(1e9)})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Rows[0][0].Int() >= hi.Rows[0][0].Int() {
		t.Errorf("selective binding count %v >= keep-all count %v", lo.Rows[0][0], hi.Rows[0][0])
	}
}

func TestPrepareBadSQL(t *testing.T) {
	db := Open(Options{})
	if _, err := db.Prepare("select broken from", ExecOptions{}); err == nil {
		t.Error("Prepare of bad SQL succeeded")
	}
	if _, err := db.Prepare("select x from missing_table", ExecOptions{}); err == nil {
		t.Error("Prepare over missing table succeeded")
	}
}
